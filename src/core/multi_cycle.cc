#include "core/multi_cycle.hh"

#include "util/logging.hh"

namespace apollo {

namespace {

/**
 * Shared Eq. (9) kernel: per-cycle linear sums, averaged per T-window.
 * @p column_of maps model proxy index q to the matrix column to read.
 */
std::vector<float>
predictWindowsImpl(const ApolloModel &model, const BitColumnMatrix &X,
                   uint32_t T, std::span<const SegmentInfo> segments,
                   bool proxy_layout)
{
    APOLLO_REQUIRE(T >= 1, "window size must be positive");
    // Per-cycle weighted sums (binary AND-accumulate).
    std::vector<float> per_cycle(X.rows(), 0.0f);
    for (size_t q = 0; q < model.proxyIds.size(); ++q) {
        const size_t col = proxy_layout ? q : model.proxyIds[q];
        APOLLO_REQUIRE(col < X.cols(), "column out of range");
        if (model.weights[q] != 0.0f)
            X.axpyColumn(col, model.weights[q], per_cycle.data());
    }

    std::vector<float> out;
    for (const SegmentInfo &seg : segments) {
        const size_t windows = seg.cycles() / T;
        for (size_t w = 0; w < windows; ++w) {
            double acc = 0.0;
            for (uint32_t t = 0; t < T; ++t)
                acc += per_cycle[seg.begin + w * T + t];
            out.push_back(static_cast<float>(
                model.intercept + acc / static_cast<double>(T)));
        }
    }
    APOLLO_REQUIRE(!out.empty(), "no full windows at this T");
    return out;
}

} // namespace

std::vector<float>
MultiCycleModel::predictWindowsFull(
    const BitColumnMatrix &X, uint32_t T,
    std::span<const SegmentInfo> segments) const
{
    return predictWindowsImpl(base, X, T, segments, false);
}

std::vector<float>
MultiCycleModel::predictWindowsProxies(
    const BitColumnMatrix &Xq, uint32_t T,
    std::span<const SegmentInfo> segments) const
{
    return predictWindowsImpl(base, Xq, T, segments, true);
}

MultiCycleModel
trainMultiCycle(const Dataset &train, uint32_t tau,
                const ApolloTrainConfig &config,
                const std::string &design_name)
{
    MultiCycleModel model;
    model.tau = tau;
    if (tau == 1) {
        model.base = trainApollo(train, config, design_name).model;
        return model;
    }
    const CountDataset agg = aggregateIntervals(train, tau);
    model.base =
        trainApolloOnCounts(agg, config, design_name).model;
    return model;
}

std::vector<float>
windowAverageLabels(std::span<const float> y, uint32_t T,
                    std::span<const SegmentInfo> segments)
{
    std::vector<float> out;
    for (const SegmentInfo &seg : segments) {
        const size_t windows = seg.cycles() / T;
        for (size_t w = 0; w < windows; ++w) {
            double acc = 0.0;
            for (uint32_t t = 0; t < T; ++t)
                acc += y[seg.begin + w * T + t];
            out.push_back(
                static_cast<float>(acc / static_cast<double>(T)));
        }
    }
    return out;
}

} // namespace apollo
