/**
 * @file
 * ApolloTrainer: the full model-construction pipeline of Fig. 5(a) —
 * MCP proxy selection (pruning) followed by the ridge *relaxation*
 * refit (§4.4): a fresh linear model trained from scratch on only the
 * selected proxies with a much weaker L2 penalty, recovering the
 * accuracy the selection-strength penalty took away. The number of
 * proxies is unchanged by relaxation (L2 is not sparsity-inducing).
 */

#ifndef APOLLO_CORE_APOLLO_TRAINER_HH
#define APOLLO_CORE_APOLLO_TRAINER_HH

#include <span>
#include <string>

#include "core/apollo_model.hh"
#include "core/proxy_selector.hh"
#include "trace/dataset.hh"

namespace apollo {

/** Training configuration (selection + relaxation). */
struct ApolloTrainConfig
{
    ProxySelectorConfig selection;
    /** Weak ridge strength for the relaxation refit. */
    double relaxRidge = 1e-3;
    /** Constrain relaxed weights to be non-negative (Eq. 1: w in R+). */
    bool relaxNonneg = false;
    uint32_t relaxMaxSweeps = 400;
    double relaxTol = 1e-5;
    /**
     * Cap on cycles used during the *selection* stage (subsampled with
     * even stride); relaxation always uses every cycle. 0 = no cap.
     */
    size_t selectionCycleCap = 0;
};

/** Training artifacts (model + diagnostics for Figs. 13/14). */
struct ApolloTrainResult
{
    ApolloModel model;
    ProxySelection selection;
    /** The relaxed refit restricted to proxy columns. */
    CdResult relaxed;
    double selectSeconds = 0.0;
    double relaxSeconds = 0.0;
};

/** Train APOLLO on a per-cycle dataset. */
ApolloTrainResult trainApollo(const Dataset &train,
                              const ApolloTrainConfig &config,
                              const std::string &design_name = "");

/**
 * Train APOLLO_tau on a tau-aggregated dataset (features are average
 * toggle rates in [0, 1]; see §4.5). The returned weights are directly
 * usable in the Eq. (9) per-cycle accumulate-then-shift inference.
 */
ApolloTrainResult trainApolloOnCounts(const CountDataset &train,
                                      const ApolloTrainConfig &config,
                                      const std::string &design_name = "");

/**
 * Ridge-relax an arbitrary proxy set against a per-cycle dataset
 * (shared by baselines and by trainApollo itself).
 */
ApolloTrainResult relaxProxySet(const Dataset &train,
                                std::span<const uint32_t> proxy_ids,
                                const ApolloTrainConfig &config,
                                const std::string &design_name = "");

} // namespace apollo

#endif // APOLLO_CORE_APOLLO_TRAINER_HH
