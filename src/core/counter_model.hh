/**
 * @file
 * Event-counter power model — the classic runtime approach APOLLO
 * displaces (§2.2, Table 1 "event counters" row): a linear model over
 * a handful of PMU-style event rates (retired ops, ALU/vector issue,
 * memory traffic, cache misses) accumulated over fixed epochs.
 *
 * Counter models are "free" (the counters already exist) but the
 * events they see manifest cycles after the causal switching activity
 * and are far coarser than per-net toggles, so their accuracy
 * collapses as the epoch shrinks — the motivation for proxy-based
 * OPMs. The bench (bench_ext_counters) measures exactly that
 * resolution sweep.
 */

#ifndef APOLLO_CORE_COUNTER_MODEL_HH
#define APOLLO_CORE_COUNTER_MODEL_HH

#include <span>
#include <string>
#include <vector>

#include "trace/dataset.hh"
#include "uarch/activity_frame.hh"

namespace apollo {

/** The PMU-style events the model may read. */
enum class CounterEvent : uint8_t
{
    RetiredOps,   ///< retire-stage activity
    IntIssue,     ///< integer ALU issue activity
    VecIssue,     ///< vector issue activity
    MemIssue,     ///< load/store issue activity
    L1DActivity,  ///< data-cache traffic
    L2Activity,   ///< L2 traffic (miss-driven)
    FrontendOps,  ///< fetch/decode activity
    NumEvents,
};

constexpr size_t numCounterEvents =
    static_cast<size_t>(CounterEvent::NumEvents);

/** Name of a counter event. */
const char *counterEventName(CounterEvent event);

/**
 * Per-epoch counter readings derived from the frame stream: each event
 * accumulates its unit-activity over the epoch (what a hardware
 * counter of that event would have counted, up to scale).
 * Epochs never straddle segment boundaries.
 */
struct CounterTrace
{
    /** Row-major epochs x numCounterEvents. */
    std::vector<float> counts;
    std::vector<float> epochPower; ///< average label per epoch
    uint32_t epochCycles = 0;
    size_t epochs = 0;
};

/** Accumulate counters over @p epoch_cycles-cycle epochs. */
CounterTrace collectCounters(std::span<const ActivityFrame> frames,
                             std::span<const float> power,
                             const std::vector<SegmentInfo> &segments,
                             uint32_t epoch_cycles);

/** Linear model over the event rates. */
struct CounterPowerModel
{
    std::vector<float> weights; ///< numCounterEvents
    double intercept = 0.0;
    uint32_t trainedEpochCycles = 0;

    /** Predict per-epoch power for a counter trace. */
    std::vector<float> predict(const CounterTrace &trace) const;
};

/** Ridge-fit the counter model at the trace's epoch size. */
CounterPowerModel trainCounterModel(const CounterTrace &trace,
                                    double ridge = 1e-4);

} // namespace apollo

#endif // APOLLO_CORE_COUNTER_MODEL_HH
