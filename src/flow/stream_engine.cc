#include "flow/stream_engine.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <ostream>

#include <cstdlib>
#include <string_view>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "opm/opm_bitparallel.hh"
#include "opm/opm_simulator.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One in-flight chunk plus its per-cycle sums. */
struct Slot
{
    ProxyChunk chunk;
    ChunkSums sums;

    uint64_t
    bufferBytes() const
    {
        return chunk.bits.byteSize() + sums.bufferBytes();
    }
};

/** Wraps a sink to attribute time spent inside consume(). */
class TimedSink : public PowerSink
{
  public:
    TimedSink(PowerSink &inner, double &seconds)
        : inner_(inner), seconds_(seconds)
    {}

    Status
    consume(uint64_t first_index, std::span<const float> values) override
    {
        auto t0 = Clock::now();
        Status st = inner_.consume(first_index, values);
        seconds_ += secondsSince(t0);
        return st;
    }

  private:
    PowerSink &inner_;
    double &seconds_;
};

/**
 * Kernel table for a quantized pipeline, honoring APOLLO_POPCNT
 * (read at construction so benches and tests can switch between
 * engine runs): unset/empty or an unknown value = dispatched best,
 * a known implementation name = that table, "off"/"0" = the legacy
 * per-cycle path (nullptr). Tiny windows always take the legacy path.
 */
const popkernels::Kernels *
selectPopcountKernels(uint32_t T)
{
    if (T < StreamPipeline::kBitParallelMinT)
        return nullptr;
    const char *env = std::getenv("APOLLO_POPCNT");
    if (env && env[0] != '\0') {
        const std::string_view v(env);
        if (v == "off" || v == "0")
            return nullptr;
        using popkernels::Impl;
        for (Impl impl : {Impl::Scalar, Impl::Avx2, Impl::Avx512})
            if (v == popkernels::implName(impl) &&
                popkernels::implAvailable(impl))
                return &popkernels::implKernels(impl);
    }
    return &popkernels::kernels();
}

} // namespace

StreamPipeline::StreamPipeline(const ApolloModel &model, uint32_t window_T)
    : model_(&model), windowT_(window_T)
{
    APOLLO_REQUIRE(!model.proxyIds.empty(), "empty model");
    APOLLO_REQUIRE(model.weights.size() == model.proxyIds.size(),
                   "model weight/proxy arity mismatch");
}

StreamPipeline::StreamPipeline(const QuantizedModel &model, uint32_t T)
    : qmodel_(&model), windowT_(T), popk_(selectPopcountKernels(T))
{
    // The simulator runs the width/argument checks eagerly (invalid T
    // or an empty model is a configuration error) and carries the
    // per-stream accumulator state.
    sim_.emplace(model, T);
}

size_t
StreamPipeline::proxyCount() const
{
    return qmodel_ ? qmodel_->proxyCount() : model_->proxyCount();
}

void
StreamPipeline::computeSums(const BitColumnMatrix &bits, size_t rows,
                            ChunkSums &out) const
{
    const size_t q = proxyCount();
    out.rows = rows;
    if (qmodel_) {
        if (popk_) {
            // Bit-parallel: one weighted popcount pass per column,
            // 64 cycles per word, directly onto the stream's window
            // grid (out.windowPhase0). Never materializes per-cycle
            // rows or sums.
            opmSegmentSums(*qmodel_, windowT_, out.windowPhase0, bits,
                           rows, *popk_, out.segSums);
            out.isums.clear();
        } else {
            out.isums.assign(rows, qmodel_->qintercept);
            for (size_t c = 0; c < q; ++c)
                if (qmodel_->qweights[c] != 0)
                    bits.axpyColumnI64(c, qmodel_->qweights[c],
                                       out.isums.data());
            out.segSums.clear();
        }
    } else if (windowT_ > 0) {
        // Weighted sums *without* intercept, like predictWindowsImpl's
        // per_cycle vector.
        out.fsums.assign(rows, 0.0f);
        for (size_t c = 0; c < q; ++c)
            if (model_->weights[c] != 0.0f)
                bits.axpyColumn(c, model_->weights[c],
                                out.fsums.data());
    } else {
        out.fsums.resize(rows);
        model_->predictProxiesInto(bits, out.fsums);
    }
}

Status
StreamPipeline::emit(const ChunkSums &sums, PowerSink &sink)
{
    Status sunk = Status::okStatus();
    cycles_ += sums.rows;
    if (qmodel_) {
        staging_.clear();
        if (popk_) {
            // Replay the precomputed segment sums: the chunk's
            // leading segment continues the window the previous chunk
            // left open (the accumulator carried it), so the phases
            // must agree.
            APOLLO_ASSERT(sums.rows == 0 ||
                              sim_->phase() == sums.windowPhase0,
                          "bit-parallel chunk emitted out of stream "
                          "order");
            size_t a = 0;
            size_t s = 0;
            size_t b = std::min<size_t>(
                sums.rows, windowT_ - sums.windowPhase0);
            while (a < sums.rows) {
                const OpmSimulator::Output out = sim_->stepSegment(
                    sums.segSums[s++], static_cast<uint32_t>(b - a));
                if (out.valid)
                    staging_.push_back(static_cast<float>(out.power));
                a = b;
                b = std::min<size_t>(sums.rows, a + windowT_);
            }
        } else {
            for (size_t i = 0; i < sums.rows; ++i) {
                const OpmSimulator::Output out =
                    sim_->stepSum(sums.isums[i]);
                if (out.valid)
                    staging_.push_back(static_cast<float>(out.power));
            }
        }
        if (!staging_.empty())
            sunk = sink.consume(outputs_, staging_);
        outputs_ += staging_.size();
    } else if (windowT_ > 0) {
        staging_.clear();
        for (size_t i = 0; i < sums.rows; ++i) {
            windowAcc_ += sums.fsums[i];
            if (++windowPhase_ == windowT_) {
                staging_.push_back(static_cast<float>(
                    model_->intercept +
                    windowAcc_ / static_cast<double>(windowT_)));
                windowAcc_ = 0.0;
                windowPhase_ = 0;
            }
        }
        if (!staging_.empty())
            sunk = sink.consume(outputs_, staging_);
        outputs_ += staging_.size();
    } else {
        sunk = sink.consume(
            sums.firstCycle,
            std::span<const float>(sums.fsums.data(), sums.rows));
        outputs_ += sums.rows;
    }
    if (sunk.code() == StatusCode::Cancelled) {
        // A cancelled stream must leave no partial-window residue: a
        // session slot reusing this pipeline would otherwise fold the
        // dead stream's accumulator into its first window.
        windowAcc_ = 0.0;
        windowPhase_ = 0;
        if (sim_)
            sim_->reset();
    }
    return sunk;
}

void
StreamPipeline::reset()
{
    windowAcc_ = 0.0;
    windowPhase_ = 0;
    cycles_ = 0;
    outputs_ = 0;
    if (sim_)
        sim_->reset();
}

Status
StreamConfig::validate() const
{
    if (chunkCycles == 0)
        return Status::invalidArgument("chunkCycles must be positive");
    if (windowT != 0 && !std::has_single_bit(windowT))
        return Status::invalidArgument("windowT must be a power of two, "
                                       "got ",
                                       windowT);
    return Status::okStatus();
}

RingBufferSink::RingBufferSink(size_t capacity) : capacity_(capacity)
{
    APOLLO_REQUIRE(capacity > 0, "ring buffer needs capacity > 0");
}

Status
RingBufferSink::consume(uint64_t, std::span<const float> values)
{
    totalSeen_ += values.size();
    // Only the last capacity_ values of a large batch can survive.
    const size_t keep = std::min(values.size(), capacity_);
    if (keep < values.size())
        ring_.clear();
    for (size_t i = values.size() - keep; i < values.size(); ++i) {
        if (ring_.size() == capacity_)
            ring_.pop_front();
        ring_.push_back(values[i]);
    }
    return Status::okStatus();
}

std::vector<float>
RingBufferSink::latest() const
{
    return std::vector<float>(ring_.begin(), ring_.end());
}

CsvPowerSink::CsvPowerSink(std::ostream &os, bool header) : os_(os)
{
    if (header)
        os_ << "index,power\n";
}

Status
CsvPowerSink::consume(uint64_t first_index, std::span<const float> values)
{
    for (size_t i = 0; i < values.size(); ++i)
        os_ << first_index + i << ',' << values[i] << '\n';
    if (!os_)
        return Status::ioError("CSV power sink write failed");
    return Status::okStatus();
}

Status
CsvPowerSink::finish(uint64_t)
{
    os_.flush();
    if (!os_)
        return Status::ioError("CSV power sink flush failed");
    return Status::okStatus();
}

StreamingInference::StreamingInference(ApolloModel model)
    : model_(std::move(model))
{
    APOLLO_REQUIRE(!model_.proxyIds.empty(), "empty model");
    APOLLO_REQUIRE(model_.weights.size() == model_.proxyIds.size(),
                   "model weight/proxy arity mismatch");
}

StreamingInference::StreamingInference(QuantizedModel model, uint32_t T)
    : qmodel_(std::move(model)), qwindowT_(T)
{
    // Construct a simulator once to run the width/argument checks
    // eagerly (invalid T or an empty model is a configuration error).
    OpmSimulator checker(*qmodel_, T);
    (void)checker;
}

size_t
StreamingInference::proxyCount() const
{
    return qmodel_ ? qmodel_->proxyCount() : model_.proxyCount();
}

StatusOr<StreamStats>
StreamingInference::run(ProxyChunkReader &reader, PowerSink &sink,
                        const StreamConfig &config) const
{
    if (Status s = config.validate(); !s.ok())
        return s;

    const bool quantized = qmodel_.has_value();
    if (quantized && config.windowT != 0 && config.windowT != qwindowT_)
        return Status::invalidArgument(
            "quantized engine runs at its construction window T=",
            qwindowT_, ", config requested ", config.windowT);
    const uint32_t T = quantized ? qwindowT_ : config.windowT;

    // Arity is validated per chunk below: file/VCD readers only learn
    // their proxy count after the first read.
    const size_t q = proxyCount();

    const size_t in_flight =
        config.chunksInFlight
            ? config.chunksInFlight
            : std::max<size_t>(2, ThreadPool::global().threadCount());

    APOLLO_TRACE_SPAN("stream.run");
    APOLLO_GAUGE_SET("apollo.stream.chunks_in_flight",
                     static_cast<double>(in_flight));

    std::vector<Slot> slots(in_flight);
    StreamStats stats;

    // All sequential state carried across chunks (the float Eq. 9
    // window accumulator, the OPM accumulator) lives in the pipeline;
    // this run owns a fresh one, so runs never see each other's state.
    StreamPipeline pipe = quantized ? StreamPipeline(*qmodel_, T)
                                    : StreamPipeline(model_, T);

    // Sink time is the backpressure signal: a slow consumer shows up
    // here, not in the compute stages.
    double sink_seconds = 0.0;
    TimedSink timed_sink(sink, sink_seconds);

    bool at_end = false;
    // Cycles handed to the pipeline so far: the window phase of each
    // chunk's first row is known before the parallel compute stage
    // runs, because slots fill sequentially.
    uint64_t stream_pos = 0;
    while (!at_end && !stats.cancelled) {
        // 1) Fill slots. Readers are sequential by contract, so reads
        //    are not parallelized; compute below is.
        size_t filled = 0;
        auto t0 = Clock::now();
        while (filled < in_flight) {
            Slot &slot = slots[filled];
            StatusOr<size_t> got =
                reader.next(config.chunkCycles, slot.chunk);
            if (!got.ok())
                return got.status();
            if (*got == 0) {
                at_end = true;
                break;
            }
            if (slot.chunk.proxies() != q)
                return Status::invalidArgument(
                    "reader serves ", slot.chunk.proxies(),
                    " proxies, model expects ", q);
            slot.sums.rows = *got;
            slot.sums.firstCycle = slot.chunk.firstCycle;
            slot.sums.windowPhase0 =
                T ? static_cast<uint32_t>(stream_pos % T) : 0;
            stream_pos += *got;
            stats.chunks++;
            stats.cycles += *got;
            stats.traceBytes += slot.chunk.bits.byteSize();
            filled++;
        }
        stats.readSeconds += secondsSince(t0);
        if (filled == 0)
            break;

        // 2) Per-cycle sums for all filled slots, slot-parallel. The
        //    compute stage is pure per chunk, so the split cannot
        //    change values.
        auto t1 = Clock::now();
        parallelFor(filled, [&](size_t s0, size_t s1) {
            for (size_t s = s0; s < s1; ++s)
                pipe.computeSums(slots[s].chunk.bits,
                                 slots[s].sums.rows, slots[s].sums);
        });

        // 3) Ordered emission: replay slot results in cycle order
        //    through the sequential pipeline state.
        for (size_t s = 0; s < filled && !stats.cancelled; ++s) {
            Status sunk = pipe.emit(slots[s].sums, timed_sink);
            if (!sunk.ok()) {
                if (sunk.code() == StatusCode::Cancelled)
                    stats.cancelled = true;
                else
                    return sunk;
            }
        }
        stats.outputs = pipe.outputs();
        stats.inferSeconds += secondsSince(t1);

        uint64_t held = 0;
        for (const Slot &slot : slots)
            held += slot.bufferBytes();
        held += pipe.bufferBytes();
        stats.peakBufferBytes = std::max(stats.peakBufferBytes, held);
    }

    if (Status fin = sink.finish(stats.outputs); !fin.ok() &&
        fin.code() != StatusCode::Cancelled)
        return fin;

    APOLLO_COUNT("apollo.stream.runs", 1);
    APOLLO_COUNT("apollo.stream.chunks", stats.chunks);
    APOLLO_COUNT("apollo.stream.cycles", stats.cycles);
    APOLLO_COUNT("apollo.stream.outputs", stats.outputs);
    if (stats.cancelled)
        APOLLO_COUNT("apollo.stream.cancelled", 1);
    if (APOLLO_OBS_ON()) {
        if (stats.inferSeconds > 0.0)
            APOLLO_GAUGE_SET("apollo.stream.cycles_per_sec",
                             static_cast<double>(stats.cycles) /
                                 stats.inferSeconds);
        APOLLO_OBSERVE("apollo.stream.sink_seconds", sink_seconds,
                       ::apollo::obs::latencyBounds());
    }
    return stats;
}

} // namespace apollo
