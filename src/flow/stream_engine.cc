#include "flow/stream_engine.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <ostream>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "opm/opm_simulator.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One in-flight chunk plus its per-cycle sums. */
struct Slot
{
    ProxyChunk chunk;
    size_t rows = 0;
    std::vector<float> fsums;   ///< float engines
    std::vector<int64_t> isums; ///< quantized engine

    uint64_t
    bufferBytes() const
    {
        return chunk.bits.byteSize() +
               fsums.capacity() * sizeof(float) +
               isums.capacity() * sizeof(int64_t);
    }
};

} // namespace

Status
StreamConfig::validate() const
{
    if (chunkCycles == 0)
        return Status::invalidArgument("chunkCycles must be positive");
    if (windowT != 0 && !std::has_single_bit(windowT))
        return Status::invalidArgument("windowT must be a power of two, "
                                       "got ",
                                       windowT);
    return Status::okStatus();
}

RingBufferSink::RingBufferSink(size_t capacity) : capacity_(capacity)
{
    APOLLO_REQUIRE(capacity > 0, "ring buffer needs capacity > 0");
}

Status
RingBufferSink::consume(uint64_t, std::span<const float> values)
{
    totalSeen_ += values.size();
    // Only the last capacity_ values of a large batch can survive.
    const size_t keep = std::min(values.size(), capacity_);
    if (keep < values.size())
        ring_.clear();
    for (size_t i = values.size() - keep; i < values.size(); ++i) {
        if (ring_.size() == capacity_)
            ring_.pop_front();
        ring_.push_back(values[i]);
    }
    return Status::okStatus();
}

std::vector<float>
RingBufferSink::latest() const
{
    return std::vector<float>(ring_.begin(), ring_.end());
}

CsvPowerSink::CsvPowerSink(std::ostream &os, bool header) : os_(os)
{
    if (header)
        os_ << "index,power\n";
}

Status
CsvPowerSink::consume(uint64_t first_index, std::span<const float> values)
{
    for (size_t i = 0; i < values.size(); ++i)
        os_ << first_index + i << ',' << values[i] << '\n';
    if (!os_)
        return Status::ioError("CSV power sink write failed");
    return Status::okStatus();
}

Status
CsvPowerSink::finish(uint64_t)
{
    os_.flush();
    if (!os_)
        return Status::ioError("CSV power sink flush failed");
    return Status::okStatus();
}

StreamingInference::StreamingInference(ApolloModel model)
    : model_(std::move(model))
{
    APOLLO_REQUIRE(!model_.proxyIds.empty(), "empty model");
    APOLLO_REQUIRE(model_.weights.size() == model_.proxyIds.size(),
                   "model weight/proxy arity mismatch");
}

StreamingInference::StreamingInference(QuantizedModel model, uint32_t T)
    : qmodel_(std::move(model)), qwindowT_(T)
{
    // Construct a simulator once to run the width/argument checks
    // eagerly (invalid T or an empty model is a configuration error).
    OpmSimulator checker(*qmodel_, T);
    (void)checker;
}

size_t
StreamingInference::proxyCount() const
{
    return qmodel_ ? qmodel_->proxyCount() : model_.proxyCount();
}

StatusOr<StreamStats>
StreamingInference::run(ProxyChunkReader &reader, PowerSink &sink,
                        const StreamConfig &config) const
{
    if (Status s = config.validate(); !s.ok())
        return s;

    const bool quantized = qmodel_.has_value();
    if (quantized && config.windowT != 0 && config.windowT != qwindowT_)
        return Status::invalidArgument(
            "quantized engine runs at its construction window T=",
            qwindowT_, ", config requested ", config.windowT);
    const uint32_t T = quantized ? qwindowT_ : config.windowT;

    // Arity is validated per chunk below: file/VCD readers only learn
    // their proxy count after the first read.
    const size_t q = proxyCount();

    const size_t in_flight =
        config.chunksInFlight
            ? config.chunksInFlight
            : std::max<size_t>(2, ThreadPool::global().threadCount());

    std::optional<OpmSimulator> sim;
    if (quantized)
        sim.emplace(*qmodel_, T);

    APOLLO_TRACE_SPAN("stream.run");
    APOLLO_GAUGE_SET("apollo.stream.chunks_in_flight",
                     static_cast<double>(in_flight));

    std::vector<Slot> slots(in_flight);
    StreamStats stats;

    // Sequential window state carried across chunks (float Eq. 9 mode;
    // matches the per-segment double accumulator of
    // MultiCycleModel::predictWindows* with the whole trace as one
    // segment — a trailing partial window produces no sample).
    double window_acc = 0.0;
    uint32_t window_phase = 0;
    std::vector<float> emit; // staging for windowed/quantized samples

    // Sink time is the backpressure signal: a slow consumer shows up
    // here, not in the compute stages.
    double sink_seconds = 0.0;
    auto timed_consume = [&](uint64_t first,
                             std::span<const float> values) {
        auto ts = Clock::now();
        Status st = sink.consume(first, values);
        sink_seconds += secondsSince(ts);
        return st;
    };

    bool at_end = false;
    while (!at_end && !stats.cancelled) {
        // 1) Fill slots. Readers are sequential by contract, so reads
        //    are not parallelized; compute below is.
        size_t filled = 0;
        auto t0 = Clock::now();
        while (filled < in_flight) {
            Slot &slot = slots[filled];
            StatusOr<size_t> got =
                reader.next(config.chunkCycles, slot.chunk);
            if (!got.ok())
                return got.status();
            if (*got == 0) {
                at_end = true;
                break;
            }
            if (slot.chunk.proxies() != q)
                return Status::invalidArgument(
                    "reader serves ", slot.chunk.proxies(),
                    " proxies, model expects ", q);
            slot.rows = *got;
            stats.chunks++;
            stats.cycles += slot.rows;
            stats.traceBytes += slot.chunk.bits.byteSize();
            filled++;
        }
        stats.readSeconds += secondsSince(t0);
        if (filled == 0)
            break;

        // 2) Per-cycle sums for all filled slots, slot-parallel. Each
        //    slot's result depends only on its own chunk, so the split
        //    cannot change values.
        auto t1 = Clock::now();
        parallelFor(filled, [&](size_t s0, size_t s1) {
            for (size_t s = s0; s < s1; ++s) {
                Slot &slot = slots[s];
                if (quantized) {
                    slot.isums.assign(slot.rows, qmodel_->qintercept);
                    for (size_t c = 0; c < q; ++c)
                        if (qmodel_->qweights[c] != 0)
                            slot.chunk.bits.axpyColumnI64(
                                c, qmodel_->qweights[c],
                                slot.isums.data());
                } else if (T > 0) {
                    // Weighted sums *without* intercept, like
                    // predictWindowsImpl's per_cycle vector.
                    slot.fsums.assign(slot.rows, 0.0f);
                    for (size_t c = 0; c < q; ++c)
                        if (model_.weights[c] != 0.0f)
                            slot.chunk.bits.axpyColumn(
                                c, model_.weights[c],
                                slot.fsums.data());
                } else {
                    slot.fsums.resize(slot.rows);
                    model_.predictProxiesInto(slot.chunk.bits,
                                              slot.fsums);
                }
            }
        });

        // 3) Ordered emission: replay slot results in cycle order
        //    through the sequential window state.
        for (size_t s = 0; s < filled && !stats.cancelled; ++s) {
            Slot &slot = slots[s];
            Status sunk = Status::okStatus();
            if (quantized) {
                emit.clear();
                for (size_t i = 0; i < slot.rows; ++i) {
                    const OpmSimulator::Output out =
                        sim->stepSum(slot.isums[i]);
                    if (out.valid)
                        emit.push_back(static_cast<float>(out.power));
                }
                if (!emit.empty())
                    sunk = timed_consume(stats.outputs, emit);
                stats.outputs += emit.size();
            } else if (T > 0) {
                emit.clear();
                for (size_t i = 0; i < slot.rows; ++i) {
                    window_acc += slot.fsums[i];
                    if (++window_phase == T) {
                        emit.push_back(static_cast<float>(
                            model_.intercept +
                            window_acc / static_cast<double>(T)));
                        window_acc = 0.0;
                        window_phase = 0;
                    }
                }
                if (!emit.empty())
                    sunk = timed_consume(stats.outputs, emit);
                stats.outputs += emit.size();
            } else {
                sunk = timed_consume(
                    slot.chunk.firstCycle,
                    std::span<const float>(slot.fsums.data(),
                                           slot.rows));
                stats.outputs += slot.rows;
            }
            if (!sunk.ok()) {
                if (sunk.code() == StatusCode::Cancelled)
                    stats.cancelled = true;
                else
                    return sunk;
            }
        }
        stats.inferSeconds += secondsSince(t1);

        uint64_t held = 0;
        for (const Slot &slot : slots)
            held += slot.bufferBytes();
        held += emit.capacity() * sizeof(float);
        stats.peakBufferBytes = std::max(stats.peakBufferBytes, held);
    }

    if (Status fin = sink.finish(stats.outputs); !fin.ok() &&
        fin.code() != StatusCode::Cancelled)
        return fin;

    APOLLO_COUNT("apollo.stream.runs", 1);
    APOLLO_COUNT("apollo.stream.chunks", stats.chunks);
    APOLLO_COUNT("apollo.stream.cycles", stats.cycles);
    APOLLO_COUNT("apollo.stream.outputs", stats.outputs);
    if (stats.cancelled)
        APOLLO_COUNT("apollo.stream.cancelled", 1);
    if (APOLLO_OBS_ON()) {
        if (stats.inferSeconds > 0.0)
            APOLLO_GAUGE_SET("apollo.stream.cycles_per_sec",
                             static_cast<double>(stats.cycles) /
                                 stats.inferSeconds);
        APOLLO_OBSERVE("apollo.stream.sink_seconds", sink_seconds,
                       ::apollo::obs::latencyBounds());
    }
    return stats;
}

} // namespace apollo
