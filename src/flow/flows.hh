/**
 * @file
 * Design-time power-analysis flows (Fig. 7):
 *  (a) commercial-style: full-signal trace + sign-off power calculation,
 *  (b) APOLLO-assisted: full RTL simulation but power from the linear
 *      model,
 *  (c) emulator-assisted: only the Q proxy bits are traced (storage and
 *      compute proportional to Q, not M) and power comes from the model
 *      — the flow that makes per-cycle tracing of multi-million-cycle
 *      workloads practical (Fig. 16).
 *
 * Each flow reports wall-clock per stage and the trace storage volume,
 * so the benches can reproduce the paper's speed/storage comparisons.
 */

#ifndef APOLLO_FLOW_FLOWS_HH
#define APOLLO_FLOW_FLOWS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/apollo_model.hh"
#include "flow/stream_engine.hh"
#include "control/droop_lab.hh"
#include "gen/ga_generator.hh"
#include "power/power_oracle.hh"
#include "trace/toggle_trace.hh"
#include "uarch/core.hh"
#include "util/status.hh"

namespace apollo {

/** Timing/size accounting for one flow run. */
struct FlowReport
{
    std::string flowName;
    uint64_t cycles = 0;
    /** RTL-simulation / emulation stage (frame generation). */
    double simSeconds = 0.0;
    /** Toggle extraction stage. */
    double traceSeconds = 0.0;
    /** Power computation stage (oracle or model inference). */
    double powerSeconds = 0.0;
    /** Bits stored per cycle * cycles, in bytes. */
    uint64_t traceBytes = 0;
    /** The per-cycle power estimate. */
    std::vector<float> power;
    /**
     * The sink stopped the streaming flow early (StatusCode::Cancelled
     * from consume()); `power` holds the samples delivered before the
     * stop. Always false for the non-streaming flows.
     */
    bool cancelled = false;

    double totalSeconds() const
    {
        return simSeconds + traceSeconds + powerSeconds;
    }
};

/** Runs the three flows over one design. */
class DesignTimeFlows
{
  public:
    DesignTimeFlows(const Netlist &netlist,
                    const CoreParams &core_params = CoreParams::defaults(),
                    const PowerParams &power_params = PowerParams{});

    /** Fig. 7(a): all-signal trace + ground-truth power. */
    FlowReport runCommercialFlow(const Program &prog,
                                 uint64_t max_cycles);

    /** Fig. 7(b): all-signal trace + APOLLO model inference. */
    FlowReport runApolloFlow(const Program &prog, uint64_t max_cycles,
                             const ApolloModel &model);

    /**
     * Fig. 7(c): proxy-only trace + APOLLO model inference. Runs on
     * the streaming backbone (chunked proxy-bit generation + streaming
     * inference) and collects the per-cycle power into the report;
     * results are bit-identical to the former batch implementation
     * (traceProxies + predictProxies).
     */
    FlowReport runEmulatorFlow(const Program &prog, uint64_t max_cycles,
                               const ApolloModel &model);

    /**
     * Fig. 7(c) with a caller-owned sink: proxy bits are generated
     * chunk by chunk and power samples are delivered to @p sink, so
     * nothing proportional to the trace length is ever resident —
     * FlowReport::power stays empty. traceSeconds/powerSeconds map to
     * the streaming engine's read/infer stages and traceBytes counts
     * the packed proxy bits streamed.
     */
    FlowReport runEmulatorFlowStreaming(const Program &prog,
                                        uint64_t max_cycles,
                                        const ApolloModel &model,
                                        PowerSink &sink,
                                        const StreamConfig &config = {});

  private:
    const Netlist &netlist_;
    CoreParams coreParams_;
    PowerParams powerParams_;
};

/**
 * A long, phase-rich workload (compute / vector / memory / branchy /
 * idle phases) standing in for the SPEC-class traces of Fig. 16.
 * @p approx_cycles controls total length (within ~20%).
 */
Program makeLongWorkload(const std::string &name, uint64_t approx_cycles,
                         uint64_t seed = 0x10119ULL);

/** Options for the GA training-data generation flow (§4.1 / Fig. 3). */
struct TrainingGenOptions
{
    GaConfig ga;
    /** Individuals selected (power-uniformly) for the dataset. */
    size_t benchmarks = 60;
    /** Cycles exported per selected individual. */
    uint64_t cyclesEach = 500;
    /**
     * Reuse frames captured during fitness simulation (single-pass
     * export). When off — or when a selected individual's captured
     * frames are shorter than cyclesEach — the individual is
     * re-simulated with the same loop trip count, which produces
     * bit-identical frames (docs/INTERNALS.md §9).
     */
    bool reuseCapturedFrames = true;
};

/** Result of the training-data generation flow. */
struct TrainingGenReport
{
    Dataset dataset;
    GaRunStats gaStats;
    double powerRangeRatio = 0.0;
    double bestPower = 0.0;
    /** Cycles simulated at export time (0 when every selected
     *  individual was served from the fitness-capture pool). */
    uint64_t exportSimulatedCycles = 0;
};

/**
 * End-to-end §4.1 training-data generation: run the GA, select a
 * power-uniform subset, and export the per-cycle dataset in a single
 * pass over the fitness simulations. Returns InvalidArgument for a
 * malformed configuration (e.g. ga.fitnessSignalStride == 0).
 */
StatusOr<TrainingGenReport> generateTrainingSet(
    const Netlist &netlist, const TrainingGenOptions &options,
    const CoreParams &core_params = CoreParams::defaults(),
    const PowerParams &power_params = PowerParams{});

/**
 * Flow entry for the closed-loop droop-mitigation scenario lab
 * (src/control, §7/§8.2): sweep {workload} x {tau} x {B} x {policy} x
 * {PDN} through the real OPM -> throttle loop and report the
 * droop-cycles-avoided vs IPC-lost Pareto rows. The model is a trained
 * float model for the netlist; the lab quantizes it per bits setting.
 * Returns InvalidArgument for a malformed grid. (Implemented in
 * src/control; re-exported here alongside the other flow entries.)
 */
using control::runDroopLab;

} // namespace apollo

#endif // APOLLO_FLOW_FLOWS_HH
