#include "flow/flows.hh"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

DesignTimeFlows::DesignTimeFlows(const Netlist &netlist,
                                 const CoreParams &core_params,
                                 const PowerParams &power_params)
    : netlist_(netlist), coreParams_(core_params),
      powerParams_(power_params)
{}

FlowReport
DesignTimeFlows::runCommercialFlow(const Program &prog,
                                   uint64_t max_cycles)
{
    FlowReport rep;
    rep.flowName = "commercial (all signals + sign-off power)";
    APOLLO_COUNT("apollo.flow.runs", 1);

    auto t0 = Clock::now();
    DatasetBuilder builder(netlist_, coreParams_, powerParams_);
    {
        APOLLO_TRACE_SPAN("flow.simulate");
        builder.addProgram(prog, max_cycles);
    }
    rep.simSeconds = secondsSince(t0);
    rep.cycles = builder.frames().size();
    APOLLO_OBSERVE("apollo.flow.simulate_seconds", rep.simSeconds,
                   ::apollo::obs::latencyBounds());

    // Full-signal toggle extraction + per-toggle power accounting are
    // fused in build(); we attribute the whole stage to power since the
    // oracle dominates (it touches every toggling net's capacitance).
    auto t1 = Clock::now();
    Dataset ds = [&] {
        APOLLO_TRACE_SPAN("flow.power");
        return builder.build();
    }();
    rep.powerSeconds = secondsSince(t1);
    APOLLO_OBSERVE("apollo.flow.power_seconds", rep.powerSeconds,
                   ::apollo::obs::latencyBounds());
    rep.traceBytes = ds.X.byteSize();
    rep.power = std::move(ds.y);
    return rep;
}

FlowReport
DesignTimeFlows::runApolloFlow(const Program &prog, uint64_t max_cycles,
                               const ApolloModel &model)
{
    FlowReport rep;
    rep.flowName = "apollo (all signals + model inference)";
    APOLLO_COUNT("apollo.flow.runs", 1);

    auto t0 = Clock::now();
    DatasetBuilder builder(netlist_, coreParams_, powerParams_);
    {
        APOLLO_TRACE_SPAN("flow.simulate");
        builder.addProgram(prog, max_cycles);
    }
    rep.simSeconds = secondsSince(t0);
    rep.cycles = builder.frames().size();
    APOLLO_OBSERVE("apollo.flow.simulate_seconds", rep.simSeconds,
                   ::apollo::obs::latencyBounds());

    // RTL simulation still dumps every signal...
    auto t1 = Clock::now();
    const std::vector<uint32_t> begin_of = builder.segmentBeginTable();
    std::vector<uint32_t> all_ids(netlist_.signalCount());
    for (size_t c = 0; c < all_ids.size(); ++c)
        all_ids[c] = static_cast<uint32_t>(c);
    const BitColumnMatrix full = [&] {
        APOLLO_TRACE_SPAN("flow.trace");
        return DatasetBuilder::traceProxies(
            builder.engine(), builder.frames(), all_ids, begin_of);
    }();
    rep.traceSeconds = secondsSince(t1);
    rep.traceBytes = full.byteSize();
    APOLLO_OBSERVE("apollo.flow.trace_seconds", rep.traceSeconds,
                   ::apollo::obs::latencyBounds());

    // ...but the power calculation is replaced by linear inference.
    auto t2 = Clock::now();
    {
        APOLLO_TRACE_SPAN("flow.infer");
        rep.power = model.predictFull(full);
    }
    rep.powerSeconds = secondsSince(t2);
    APOLLO_OBSERVE("apollo.flow.infer_seconds", rep.powerSeconds,
                   ::apollo::obs::latencyBounds());
    return rep;
}

FlowReport
DesignTimeFlows::runEmulatorFlow(const Program &prog,
                                 uint64_t max_cycles,
                                 const ApolloModel &model)
{
    VectorSink sink;
    FlowReport rep =
        runEmulatorFlowStreaming(prog, max_cycles, model, sink);
    rep.flowName = "emulator (proxy-only trace + model inference)";
    rep.power = sink.takeValues();
    return rep;
}

FlowReport
DesignTimeFlows::runEmulatorFlowStreaming(const Program &prog,
                                          uint64_t max_cycles,
                                          const ApolloModel &model,
                                          PowerSink &sink,
                                          const StreamConfig &config)
{
    FlowReport rep;
    rep.flowName =
        "emulator-streaming (chunked proxy trace + sink inference)";
    APOLLO_COUNT("apollo.flow.runs", 1);

    auto t0 = Clock::now();
    DatasetBuilder builder(netlist_, coreParams_, powerParams_);
    {
        APOLLO_TRACE_SPAN("flow.simulate");
        builder.addProgram(prog, max_cycles);
    }
    rep.simSeconds = secondsSince(t0);
    rep.cycles = builder.frames().size();
    APOLLO_OBSERVE("apollo.flow.simulate_seconds", rep.simSeconds,
                   ::apollo::obs::latencyBounds());

    // Proxy bits are generated chunk by chunk straight from the frame
    // history (identical bits to DatasetBuilder::traceProxies — the
    // activity engine is a pure function of (signal, cycle)) and flow
    // through the streaming engine into the sink.
    FrameProxyChunkReader reader(builder.engine(), builder.frames(),
                                 model.proxyIds,
                                 builder.segmentBeginTable());
    const StreamingInference engine(model);
    APOLLO_TRACE_SPAN("flow.stream");
    StatusOr<StreamStats> stats = engine.run(reader, sink, config);
    // Flow configuration/sink failures are caller errors at this layer.
    if (!stats.ok())
        fatal(stats.status().toString());

    rep.traceSeconds = stats->readSeconds;
    rep.powerSeconds = stats->inferSeconds;
    rep.traceBytes = stats->traceBytes;
    rep.cancelled = stats->cancelled;
    return rep;
}

Program
makeLongWorkload(const std::string &name, uint64_t approx_cycles,
                 uint64_t seed)
{
    using namespace asm_helpers;

    // Phase bodies (each phase is its own counted loop on x27 so the
    // global x31 convention is untouched).
    const std::vector<std::vector<Instruction>> phases = {
        // compute-heavy scalar
        {mul(0, 1, 2), add(3, 0, 4), eor(5, 3, 1), add(6, 5, 2),
         lsl(7, 6, 1), sub(1, 7, 0)},
        // vector-heavy
        {vfma(0, 1, 2), vfma(3, 4, 5), vmul(6, 7, 0), vadd(1, 6, 3),
         vldr(8, 30, 0), vfma(9, 8, 1)},
        // memory streaming
        {vldr(0, 28, 0), vstr(0, 29, 0), ldr(1, 28, 64),
         str(1, 29, 64), addi(28, 28, 128), addi(29, 29, 128)},
        // pointer-chase / cache-miss heavy
        {ldr(0, 29, 0), add(1, 1, 0), addi(29, 29, 8256),
         eor(2, 1, 0)},
        // branchy / low ILP
        {addi(0, 0, 1), and_(1, 0, 3), sub(2, 0, 1), add(3, 2, 2)},
        // near-idle (clock-gating kicks in around the nops)
        {nop(), nop(), nop(), nop(), nop(), addi(0, 0, 1)},
    };

    // Estimate ~1.5 cycles per instruction on average; split the cycle
    // budget evenly across repeated phase rounds.
    const uint64_t rounds = 4;
    const uint64_t per_phase_cycles =
        std::max<uint64_t>(200, approx_cycles / (rounds * phases.size()));

    std::vector<Instruction> instrs;
    uint64_t mix = seed;
    for (uint64_t r = 0; r < rounds; ++r) {
        for (const auto &body : phases) {
            const auto iters = static_cast<int32_t>(std::max<uint64_t>(
                4, (2 * per_phase_cycles) / (3 * body.size())));
            instrs.push_back(movi(27, iters));
            const auto body_begin = instrs.size();
            instrs.insert(instrs.end(), body.begin(), body.end());
            instrs.push_back(subi(27, 27, 1));
            instrs.push_back(bnez(
                27, -static_cast<int32_t>(instrs.size() - body_begin)));
            mix = mix * 6364136223846793005ULL + 1442695040888963407ULL;
        }
    }

    Program prog(name, std::move(instrs));
    prog.setDataSeed(seed);
    return prog;
}

StatusOr<TrainingGenReport>
generateTrainingSet(const Netlist &netlist,
                    const TrainingGenOptions &options,
                    const CoreParams &core_params,
                    const PowerParams &power_params)
{
    if (Status st = options.ga.validate(); !st.ok())
        return st;
    if (options.benchmarks == 0)
        return Status::invalidArgument("benchmarks must be >= 1");
    if (options.cyclesEach == 0)
        return Status::invalidArgument("cyclesEach must be >= 1");

    APOLLO_COUNT("apollo.flow.runs", 1);
    DatasetBuilder builder(netlist, core_params, power_params);
    GaGenerator ga(builder, options.ga);
    {
        APOLLO_TRACE_SPAN("flow.ga_run");
        APOLLO_SCOPED_TIMER("apollo.flow.ga_seconds");
        ga.run();
    }

    TrainingGenReport rep;
    rep.gaStats = ga.stats();
    rep.powerRangeRatio = ga.powerRangeRatio();
    rep.bestPower = ga.best().avgPower;

    // Single-pass export: selected individuals' frames were already
    // captured during fitness simulation; re-simulation (with the
    // identical loop trip count, hence bit-identical frames) is only a
    // fallback for frames the capture cannot serve.
    const std::vector<GaIndividual> selected =
        ga.selectTrainingSet(options.benchmarks);
    int idx = 0;
    for (const GaIndividual &ind : selected) {
        const std::string name = "ga" + std::to_string(idx++);
        std::span<const ActivityFrame> captured =
            options.reuseCapturedFrames
                ? ga.capturedFrames(ind.id)
                : std::span<const ActivityFrame>{};
        if (captured.size() >= options.cyclesEach) {
            builder.addFrames(name,
                              captured.subspan(0, options.cyclesEach));
        } else {
            const size_t before = builder.frames().size();
            builder.addProgram(
                GaGenerator::toProgram(
                    ind, name,
                    GaGenerator::fitnessIterations(
                        ind.body.size(), options.ga.fitnessCycles)),
                options.cyclesEach);
            rep.exportSimulatedCycles +=
                builder.frames().size() - before;
        }
    }
    {
        APOLLO_TRACE_SPAN("flow.export");
        APOLLO_SCOPED_TIMER("apollo.flow.export_seconds");
        rep.dataset = builder.build();
    }
    return rep;
}

} // namespace apollo
