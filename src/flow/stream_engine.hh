/**
 * @file
 * Bounded-memory streaming inference: the trace-to-power pipeline that
 * turns any ProxyChunkReader (trace/stream_reader.hh) into a stream of
 * power samples delivered to a PowerSink, without ever holding the full
 * trace or the full output in memory.
 *
 * The engine works in rounds: it reads up to chunksInFlight chunks,
 * computes each chunk's per-cycle sums in parallel (the chunks are
 * independent), then replays the results through the sequential
 * window/accumulator state in cycle order. Results are bit-identical to
 * the batch paths:
 *
 *  - per-cycle float: each chunk worker calls the same
 *    ApolloModel::predictProxiesInto kernel the batch predictProxies()
 *    uses, and per output element the float additions (intercept, then
 *    w_q per set bit in ascending q) do not depend on row chunking;
 *  - windowed float (Eq. 9): per-cycle sums accumulate like
 *    MultiCycleModel::predictWindowsProxies — float axpy per column,
 *    then a double window accumulator that carries across chunk
 *    boundaries, emitting float(intercept + acc/T) every T cycles;
 *  - quantized: per-cycle integer sums are exact in any evaluation
 *    order, so parallel column-wise accumulation
 *    (BitColumnMatrix::axpyColumnI64) followed by ordered
 *    OpmSimulator::stepSum replay equals OpmSimulator::simulate().
 *
 * Peak memory is O(chunksInFlight * chunkCycles * Q / 8) regardless of
 * trace length (StreamStats::peakBufferBytes reports the engine's
 * accounting; bench/bench_stream_infer.cc checks it stays flat at 10x
 * the trace length).
 */

#ifndef APOLLO_FLOW_STREAM_ENGINE_HH
#define APOLLO_FLOW_STREAM_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "core/apollo_model.hh"
#include "opm/opm_simulator.hh"
#include "opm/quantize.hh"
#include "trace/stream_reader.hh"
#include "util/popcnt_kernels.hh"
#include "util/status.hh"

namespace apollo {

/**
 * Tuning knobs for a streaming run. Defaults are chosen so that one
 * in-flight chunk (16384 cycles x Q bits plus one float per cycle)
 * fits comfortably in L2 on current cores:
 *
 *   chunkCycles    16384  rows per chunk served to the workers
 *   chunksInFlight 0      auto: max(2, worker threads)
 *   windowT        0      per-cycle output; a power of two T enables
 *                         Eq. (9) window averaging (float engine only —
 *                         the quantized engine fixes T at construction)
 *
 * Setters validate eagerly and chain:
 *   StreamConfig().withChunkCycles(4096).withWindowT(32)
 */
struct StreamConfig
{
    size_t chunkCycles = 1 << 14;
    size_t chunksInFlight = 0;
    uint32_t windowT = 0;

    StreamConfig &
    withChunkCycles(size_t cycles)
    {
        chunkCycles = cycles;
        return *this;
    }

    StreamConfig &
    withChunksInFlight(size_t chunks)
    {
        chunksInFlight = chunks;
        return *this;
    }

    StreamConfig &
    withWindowT(uint32_t T)
    {
        windowT = T;
        return *this;
    }

    /** Ok, or InvalidArgument naming the offending field. */
    Status validate() const;
};

/**
 * Receives power samples in order. @p first_index is the global index
 * of values[0]: a cycle index in per-cycle mode, a window index in
 * windowed/quantized mode. Returning a non-ok Status stops the run;
 * StatusCode::Cancelled stops it gracefully (the engine still calls
 * finish() and reports stats), any other code aborts with that error.
 */
class PowerSink
{
  public:
    virtual ~PowerSink() = default;

    virtual Status consume(uint64_t first_index,
                           std::span<const float> values) = 0;

    /** Called once after the last consume() with the sample total. */
    virtual Status finish(uint64_t) { return Status::okStatus(); }
};

/** Collects every sample into a vector (tests, short traces). */
class VectorSink : public PowerSink
{
  public:
    Status
    consume(uint64_t, std::span<const float> values) override
    {
        values_.insert(values_.end(), values.begin(), values.end());
        return Status::okStatus();
    }

    const std::vector<float> &values() const { return values_; }
    std::vector<float> takeValues() { return std::move(values_); }

  private:
    std::vector<float> values_;
};

/** Forwards every batch of samples to a callback. */
class CallbackSink : public PowerSink
{
  public:
    using Fn = std::function<Status(uint64_t, std::span<const float>)>;

    explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}

    Status
    consume(uint64_t first_index, std::span<const float> values) override
    {
        return fn_(first_index, values);
    }

  private:
    Fn fn_;
};

/**
 * Keeps only the most recent @p capacity samples — the runtime
 * introspection shape: a power-management agent polling a rolling
 * window of OPM output.
 */
class RingBufferSink : public PowerSink
{
  public:
    explicit RingBufferSink(size_t capacity);

    Status consume(uint64_t first_index,
                   std::span<const float> values) override;

    /** Samples currently held, oldest first. */
    std::vector<float> latest() const;
    /** Global index of the oldest held sample. */
    uint64_t firstIndex() const { return totalSeen_ - ring_.size(); }
    uint64_t totalSeen() const { return totalSeen_; }

  private:
    size_t capacity_;
    std::deque<float> ring_;
    uint64_t totalSeen_ = 0;
};

/** Writes "index,power" CSV rows as samples arrive. */
class CsvPowerSink : public PowerSink
{
  public:
    /** @p os is kept by reference. */
    explicit CsvPowerSink(std::ostream &os, bool header = true);

    Status consume(uint64_t first_index,
                   std::span<const float> values) override;
    Status finish(uint64_t total) override;

  private:
    std::ostream &os_;
};

/**
 * One chunk's precomputed per-cycle sums — the output of the pure,
 * thread-safe compute stage of the pipeline. Float engines fill
 * fsums (weighted sums, no intercept in windowed mode; full
 * prediction in per-cycle mode). The quantized engine fills segSums
 * (one exact integer adder-tree sum per T-cycle window segment,
 * computed bit-parallel from the packed 64-cycle words) and falls
 * back to per-cycle isums for tiny windows or APOLLO_POPCNT=off.
 *
 * windowPhase0 is the stream's window phase at the chunk's first row
 * (firstCycle mod T for consecutive chunks from phase zero); callers
 * must set it before computeSums() so the bit-parallel stage splits
 * segments on the stream's window grid, not the chunk's. A window
 * that straddles the chunk boundary becomes a trailing partial
 * segment here and a leading one in the next chunk; the simulator's
 * accumulator carries it across.
 */
struct ChunkSums
{
    size_t rows = 0;
    uint64_t firstCycle = 0;
    uint32_t windowPhase0 = 0;
    std::vector<float> fsums;
    std::vector<int64_t> isums;
    std::vector<int64_t> segSums;

    uint64_t
    bufferBytes() const
    {
        return fsums.capacity() * sizeof(float) +
               isums.capacity() * sizeof(int64_t) +
               segSums.capacity() * sizeof(int64_t);
    }
};

/**
 * The per-stream trace-to-power pipeline, split into its two stages so
 * that one shared thread pool can multiplex many concurrent streams
 * (src/serve/session_manager.hh) over the exact same arithmetic the
 * one-stream StreamingInference engine runs:
 *
 *  - computeSums() is a pure function of one chunk (no pipeline state
 *    touched), safe to evaluate for many chunks / many pipelines in
 *    parallel;
 *  - emit() replays precomputed sums *in cycle order* through the
 *    sequential window/OPM state and delivers samples to a sink.
 *
 * Because all carried state (window accumulator + phase, OPM
 * accumulator) lives here and nowhere else, a stream's output depends
 * only on its own chunk sequence — which is what makes K concurrent
 * serving sessions bit-identical to K sequential runs at any thread
 * count. The referenced models are kept by pointer, so every stream
 * over one registry entry shares the same immutable weights (the
 * quantized pipeline's OpmSimulator additionally carries its own
 * small fixed-point copy as part of the accumulator state). Callers
 * guarantee the model outlives the pipeline.
 */
class StreamPipeline
{
  public:
    /**
     * Float-weight pipeline: per-cycle output, or Eq. (9) windows when
     * @p window_T > 0 (power of two, validated by the callers).
     */
    explicit StreamPipeline(const ApolloModel &model,
                            uint32_t window_T = 0);

    /**
     * Quantized bit-true OPM pipeline (one sample per T-cycle
     * window). For T >= kBitParallelMinT the compute stage runs
     * bit-parallel: one weighted popcount pass per column per chunk
     * (opm/opm_bitparallel.hh, runtime-dispatched kernels from
     * util/popcnt_kernels.hh) instead of one integer add per set bit
     * per cycle — bit-identical by integer exactness. APOLLO_POPCNT
     * selects the kernel at construction: unset/empty = best
     * available, "scalar"/"avx2"/"avx512" = that implementation,
     * "off" = the legacy per-cycle isums path.
     */
    StreamPipeline(const QuantizedModel &model, uint32_t T);

    /**
     * Smallest window the bit-parallel path engages for: below this,
     * one masked popcount per column per window costs more than the
     * sparse per-set-bit adds of the legacy path.
     */
    static constexpr uint32_t kBitParallelMinT = 4;

    /** True when this pipeline computes segSums instead of isums. */
    bool bitParallel() const { return popk_ != nullptr; }

    bool quantized() const { return qmodel_ != nullptr; }
    size_t proxyCount() const;
    uint32_t windowT() const { return windowT_; }

    /** Cycles consumed and samples emitted so far (across chunks). */
    uint64_t cycles() const { return cycles_; }
    uint64_t outputs() const { return outputs_; }

    /**
     * Stage 1 (pure): per-cycle sums of rows [0, rows) of @p bits into
     * @p out. Does not read or write pipeline state, so concurrent
     * calls on one pipeline are safe. Bit-parallel quantized
     * pipelines read out.windowPhase0 (set it to the stream's window
     * phase at the chunk's first row before calling; a fresh
     * pipeline's first chunk is phase 0, the default).
     */
    void computeSums(const BitColumnMatrix &bits, size_t rows,
                     ChunkSums &out) const;

    /**
     * Stage 2 (sequential): advance the window/OPM state through
     * @p sums and deliver completed samples to @p sink. Chunks must be
     * emitted in cycle order. Returns the sink's status; on
     * StatusCode::Cancelled the partial-window state is RESET so a
     * later stream over a reused pipeline cannot inherit it.
     */
    Status emit(const ChunkSums &sums, PowerSink &sink);

    /** Drop all carried state (fresh-stream condition, counters zeroed). */
    void reset();

    /** Engine-owned staging bytes (peak-buffer accounting). */
    uint64_t
    bufferBytes() const
    {
        return staging_.capacity() * sizeof(float);
    }

  private:
    const ApolloModel *model_ = nullptr;
    const QuantizedModel *qmodel_ = nullptr;
    uint32_t windowT_ = 0;
    /** Popcount kernel table; null = legacy per-cycle isums path. */
    const popkernels::Kernels *popk_ = nullptr;
    std::optional<OpmSimulator> sim_;
    double windowAcc_ = 0.0;
    uint32_t windowPhase_ = 0;
    uint64_t cycles_ = 0;
    uint64_t outputs_ = 0;
    std::vector<float> staging_;
};

/** Accounting for one streaming run. */
struct StreamStats
{
    uint64_t cycles = 0;   ///< trace cycles consumed
    uint64_t outputs = 0;  ///< power samples delivered to the sink
    uint64_t chunks = 0;   ///< chunks read
    double readSeconds = 0.0;   ///< time inside reader.next()
    double inferSeconds = 0.0;  ///< compute + ordered emission time
    uint64_t traceBytes = 0;    ///< packed proxy-trace bytes streamed
    /** High-water mark of engine-owned buffers (chunks + sums). */
    uint64_t peakBufferBytes = 0;
    bool cancelled = false;  ///< a sink returned Cancelled
};

/**
 * The streaming inference engine. Construct once per model; run() is
 * const and carries no state between calls, so one engine can serve
 * many traces.
 */
class StreamingInference
{
  public:
    /**
     * Float-weight engine over a proxy-layout trace. Output mode is
     * per-cycle, or Eq. (9) windows when config.windowT > 0.
     */
    explicit StreamingInference(ApolloModel model);

    /**
     * Quantized fixed-point engine: bit-true OPM evaluation (one
     * sample per T-cycle window, T a power of two), matching
     * OpmSimulator::simulate() exactly.
     */
    StreamingInference(QuantizedModel model, uint32_t T);

    size_t proxyCount() const;

    /**
     * Pump @p reader to exhaustion through @p sink. Returns run stats,
     * or the first reader/sink/config error.
     */
    StatusOr<StreamStats> run(ProxyChunkReader &reader, PowerSink &sink,
                              const StreamConfig &config = {}) const;

  private:
    ApolloModel model_;
    std::optional<QuantizedModel> qmodel_;
    uint32_t qwindowT_ = 0;
};

} // namespace apollo

#endif // APOLLO_FLOW_STREAM_ENGINE_HH
