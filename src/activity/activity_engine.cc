#include "activity/activity_engine.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace apollo {

ActivityEngine::ActivityEngine(const Netlist &netlist)
    : netlist_(netlist), seed_(hashMix(netlist.seed() ^ 0xac71ULL))
{}

bool
ActivityEngine::toggles(uint32_t sig_id,
                        std::span<const ActivityFrame> frames, size_t i,
                        size_t segment_begin) const
{
    APOLLO_ASSERT(i < frames.size(), "frame index out of range");
    const Signal &sig = netlist_.signal(sig_id);
    const UnitId unit = sig.unit;
    const ActivityFrame &now = frames[i];

    switch (sig.kind) {
      case SignalKind::GatedClock: {
        // Sub-unit clock gating: each gated clock serves a slice of the
        // unit's flops, and slices enable in proportion to how busy the
        // unit is. At full activity every gate is open.
        if (!now.enabled(unit))
            return false;
        const float act = now.act(unit);
        if (act >= 0.999f)
            return true;
        const uint64_t draw =
            hashCombine(signalDrawSeed(sig_id), now.cycle);
        return hashToUnitFloat(draw) < gatedClockThreshold(act);
      }

      case SignalKind::ClockEnable: {
        if (i == segment_begin)
            return now.enabled(unit) != true; // reset state was enabled
        return now.enabled(unit) != frames[i - 1].enabled(unit);
      }

      default:
        break;
    }

    if (!now.enabled(unit))
        return false;

    // Activity/data seen through the signal's pipeline latency.
    const size_t lb = std::min<size_t>(sig.latency, i - segment_begin);
    const ActivityFrame &src = frames[i - lb];
    const float activity = src.act(unit);
    const float data = src.data(unit);

    if (sig.kind == SignalKind::BusBit) {
        const Bus &bus = netlist_.bus(static_cast<size_t>(sig.busId));
        const uint64_t bus_draw =
            hashCombine(busDrawSeed(sig.busId), now.cycle);
        const float p_event =
            busEventThreshold(bus.eventSensitivity, activity);
        if (hashToUnitFloat(bus_draw) >= p_event)
            return false;
        const uint64_t bit_draw =
            hashCombine(signalDrawSeed(sig_id), now.cycle);
        return hashToUnitFloat(bit_draw) < busBitThreshold(data);
    }

    const float p = toggleProbability(sig, activity, data);
    const uint64_t draw =
        hashCombine(signalDrawSeed(sig_id), now.cycle);
    return hashToUnitFloat(draw) < p;
}

} // namespace apollo
