#include "activity/toggle_columns.hh"

#include <cstring>

#include "util/hash_kernels.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace apollo {

ToggleColumnGenerator::ToggleColumnGenerator(const ActivityEngine &engine)
    : engine_(engine)
{}

void
ToggleColumnGenerator::bind(std::span<const ActivityFrame> frames)
{
    frames_ = frames;
    n_ = frames.size();
    words_ = (n_ + 63) / 64;
    cycle0_ = n_ ? frames[0].cycle : 0;

    contiguousCycles_ = true;
    cycles_.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
        cycles_[i] = frames[i].cycle;
        if (cycles_[i] != cycle0_ + i)
            contiguousCycles_ = false;
    }

    enabledMask_.assign(numUnits * words_, 0);
    actU_.resize(numUnits * n_);
    dataU_.resize(numUnits * n_);
    for (size_t u = 0; u < numUnits; ++u) {
        uint64_t *mask = enabledMask_.data() + u * words_;
        float *act = actU_.data() + u * n_;
        float *data = dataU_.data() + u * n_;
        for (size_t i = 0; i < n_; ++i) {
            act[i] = frames[i].activity[u];
            data[i] = frames[i].dataToggle[u];
            if (frames[i].clockEnabled[u])
                mask[i >> 6] |= 1ULL << (i & 63);
        }
    }

    draws_.resize(n_);
    busMasks_.clear();
}

void
ToggleColumnGenerator::drawColumn(uint64_t seed)
{
    if (contiguousCycles_)
        hashkernels::unitDraws(seed, cycle0_, n_, draws_.data());
    else
        hashkernels::unitDrawsAt(seed, cycles_.data(), n_,
                                 draws_.data());
}

const uint64_t *
ToggleColumnGenerator::busEventMask(const Signal &sig)
{
    const auto u = static_cast<size_t>(sig.unit);
    const uint64_t key =
        (static_cast<uint64_t>(sig.busId) << 16) |
        (static_cast<uint64_t>(u) << 8) | sig.latency;
    auto it = busMasks_.find(key);
    if (it != busMasks_.end())
        return it->second.data();

    const Bus &bus =
        engine_.netlist().bus(static_cast<size_t>(sig.busId));
    std::vector<uint64_t> mask(words_, 0);
    drawColumn(engine_.busDrawSeed(sig.busId));
    const float *act = actU_.data() + u * n_;
    const size_t lat = sig.latency;
    for (size_t i = 0; i < n_; ++i) {
        const size_t src = i < lat ? 0 : i - lat;
        const float p_event = ActivityEngine::busEventThreshold(
            bus.eventSensitivity, act[src]);
        if (draws_[i] < p_event)
            mask[i >> 6] |= 1ULL << (i & 63);
    }
    return busMasks_.emplace(key, std::move(mask))
        .first->second.data();
}

void
ToggleColumnGenerator::fillColumn(uint32_t sig_id, uint64_t *out)
{
    APOLLO_ASSERT(n_ > 0, "bind() first");
    if (naive) {
        fillNaive(sig_id, out);
        return;
    }

    const Signal &sig = engine_.netlist().signal(sig_id);
    const auto u = static_cast<size_t>(sig.unit);
    const uint64_t *en = enabledMask_.data() + u * words_;
    std::memset(out, 0, words_ * sizeof(uint64_t));

    switch (sig.kind) {
      case SignalKind::ClockEnable: {
        // toggle_i = en_i XOR en_{i-1}, with the pre-segment state
        // defined as enabled: pure word arithmetic, no hashing.
        uint64_t carry = 1;
        for (size_t w = 0; w < words_; ++w) {
            const uint64_t prev = (en[w] << 1) | carry;
            carry = en[w] >> 63;
            out[w] = en[w] ^ prev;
        }
        maskTailWords(out, words_, n_);
        return;
      }

      case SignalKind::GatedClock: {
        drawColumn(engine_.signalDrawSeed(sig_id));
        const float *act = actU_.data() + u * n_;
        for (size_t i = 0; i < n_; ++i) {
            const bool t = act[i] >= 0.999f ||
                draws_[i] < ActivityEngine::gatedClockThreshold(act[i]);
            out[i >> 6] |= static_cast<uint64_t>(t) << (i & 63);
        }
        break;
      }

      case SignalKind::BusBit: {
        const uint64_t *ev = busEventMask(sig);
        drawColumn(engine_.signalDrawSeed(sig_id));
        const float *data = dataU_.data() + u * n_;
        const size_t lat = sig.latency;
        for (size_t i = 0; i < n_; ++i) {
            const size_t src = i < lat ? 0 : i - lat;
            const bool t =
                draws_[i] < ActivityEngine::busBitThreshold(data[src]);
            out[i >> 6] |= static_cast<uint64_t>(t) << (i & 63);
        }
        for (size_t w = 0; w < words_; ++w)
            out[w] &= ev[w];
        break;
      }

      default: { // FlipFlop / CombWire
        drawColumn(engine_.signalDrawSeed(sig_id));
        const float *act = actU_.data() + u * n_;
        const float *data = dataU_.data() + u * n_;
        const size_t lat = sig.latency;
        for (size_t i = 0; i < n_; ++i) {
            const size_t src = i < lat ? 0 : i - lat;
            const float p = ActivityEngine::toggleProbability(
                sig, act[src], data[src]);
            out[i >> 6] |=
                static_cast<uint64_t>(draws_[i] < p) << (i & 63);
        }
        break;
      }
    }

    for (size_t w = 0; w < words_; ++w)
        out[w] &= en[w];
}

void
ToggleColumnGenerator::fillMatrix(std::span<const uint32_t> sig_ids,
                                  BitColumnMatrix &out)
{
    out.reset(n_, sig_ids.size());
    if (n_ == 0)
        return;
    // out.wordsPerCol() == wordCount() by construction, so each
    // column fills in place and keeps the zero-tail rule fillColumn
    // maintains.
    for (size_t k = 0; k < sig_ids.size(); ++k)
        fillColumn(sig_ids[k], out.colWordsMutable(k));
}

void
ToggleColumnGenerator::fillNaive(uint32_t sig_id, uint64_t *out) const
{
    std::memset(out, 0, words_ * sizeof(uint64_t));
    for (size_t i = 0; i < n_; ++i)
        if (engine_.toggles(sig_id, frames_, i, 0))
            out[i >> 6] |= 1ULL << (i & 63);
}

} // namespace apollo
