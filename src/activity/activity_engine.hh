/**
 * @file
 * ActivityEngine: maps per-cycle ActivityFrames to per-signal toggle
 * bits.
 *
 * The toggle bit of signal j at cycle i is a *pure function* of
 * (netlist seed, j, the frames at cycles i-2..i). Consequences:
 *  - traces are bit-reproducible,
 *  - any subset of signals can be traced independently and will match a
 *    full trace exactly — the property the emulator-assisted flow
 *    (Fig. 7(c)) exploits by recording only the Q proxies,
 *  - columns can be generated in parallel.
 *
 * Toggle rules per signal kind:
 *  - GatedClock: toggles iff its unit's clock is enabled (the gated
 *    clock net switches every enabled cycle — the dominant dynamic-power
 *    contributor).
 *  - ClockEnable: toggles iff the unit's gating state changed since the
 *    previous cycle.
 *  - FlipFlop / CombWire: when the unit clock is enabled, toggles with
 *    probability baseRate + actSens * a * (1 - dataSens * (1 - d)),
 *    where a and d are the unit's activity and data-toggle factors
 *    `latency` cycles ago.
 *  - BusBit: a per-bus "event" fires with probability proportional to
 *    unit activity; each bit then toggles with a data-dependent
 *    probability, giving the correlated multi-bit switching the OPM's
 *    bus interface (OR-tree) is designed for.
 */

#ifndef APOLLO_ACTIVITY_ACTIVITY_ENGINE_HH
#define APOLLO_ACTIVITY_ACTIVITY_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "rtl/netlist.hh"
#include "uarch/activity_frame.hh"

namespace apollo {

/** Computes per-signal toggles from frame history. */
class ActivityEngine
{
  public:
    explicit ActivityEngine(const Netlist &netlist);

    /**
     * Toggle bit of @p sig_id at frame index @p i within @p frames.
     * Lookbacks (signal latency, clock-enable history) clamp at
     * @p segment_begin so traces never leak across program boundaries.
     */
    bool toggles(uint32_t sig_id, std::span<const ActivityFrame> frames,
                 size_t i, size_t segment_begin = 0) const;

    /**
     * Toggle probability of a (non-clock) signal given its inputs.
     * Defined inline so every toggle path (per-cycle and the batched
     * column generator) compiles the exact same float expression —
     * the draw comparison must be bit-identical everywhere.
     */
    static float
    toggleProbability(const Signal &sig, float activity, float data)
    {
        const float p = sig.baseRate +
            sig.actSensitivity * activity *
                (1.0f - sig.dataSensitivity * (1.0f - data));
        return std::clamp(p, 0.0f, 0.95f);
    }

    /** Gated-clock draw threshold at unit activity @p act. */
    static float
    gatedClockThreshold(float act)
    {
        return 0.18f + 0.82f * act;
    }

    /** Bus-event draw threshold for a bus at lookback activity. */
    static float
    busEventThreshold(float event_sensitivity, float activity)
    {
        return std::clamp(event_sensitivity * activity, 0.0f, 0.95f);
    }

    /** Bus-bit draw threshold at lookback data factor. */
    static float
    busBitThreshold(float data)
    {
        return 0.35f + 0.65f * data;
    }

    /** Hash seed of @p sig_id's per-cycle draw stream. */
    uint64_t
    signalDrawSeed(uint32_t sig_id) const
    {
        return seed_ ^ (sig_id * 0x9e3779b97f4a7c15ULL);
    }

    /** Hash seed of a bus's per-cycle event-draw stream. */
    uint64_t
    busDrawSeed(int32_t bus_id) const
    {
        return seed_ ^ (0xb5b5ULL + static_cast<uint64_t>(bus_id));
    }

    const Netlist &netlist() const { return netlist_; }

  private:
    const Netlist &netlist_;
    uint64_t seed_;
};

} // namespace apollo

#endif // APOLLO_ACTIVITY_ACTIVITY_ENGINE_HH
