/**
 * @file
 * ToggleColumnGenerator: batched column-major toggle-bit generation
 * over one frame segment — the production fast path of the GA fitness
 * pipeline (bit-identical to per-cycle ActivityEngine::toggles calls).
 *
 * Per-cycle toggle evaluation reloads every signal's static fields,
 * re-derives its draw seed, and re-branches on its kind for every
 * (signal, cycle) pair. Generating a whole column at once hoists all
 * of that out of the cycle loop and leaves only the per-cycle hash
 * draw — which the util/hash_kernels batch kernel evaluates eight
 * lanes at a time. Additional batched structure:
 *  - per-unit clock-enable bitmasks are built once per bind() and
 *    AND-ed onto every column of that unit;
 *  - ClockEnable columns are pure word arithmetic (an XOR with the
 *    1-shifted enable mask) with no hashing at all;
 *  - per-bus event-pass masks are computed once per (bus, latency)
 *    and shared by all bits of the bus.
 *
 * The generator binds to a single segment (segment_begin = index 0 of
 * the bound span), matching how fitness simulation produces frames.
 */

#ifndef APOLLO_ACTIVITY_TOGGLE_COLUMNS_HH
#define APOLLO_ACTIVITY_TOGGLE_COLUMNS_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "activity/activity_engine.hh"
#include "util/bitvec.hh"

namespace apollo {

/** Column-at-a-time toggle-bit generation over one frame segment. */
class ToggleColumnGenerator
{
  public:
    explicit ToggleColumnGenerator(const ActivityEngine &engine);

    /**
     * Bind to @p frames (one segment; lookbacks clamp at index 0).
     * Precomputes the per-unit enable masks; invalidates bus caches.
     * The span must stay valid until the next bind().
     */
    void bind(std::span<const ActivityFrame> frames);

    /** Words per column for the bound frame count (tail bits zero). */
    size_t wordCount() const { return words_; }

    /**
     * Fill the packed toggle column of @p sig_id: bit i of @p out is
     * toggles(sig_id, frames, i, 0). @p out must hold wordCount()
     * words. Bit-identical to the per-cycle path by construction.
     * Honors the packed zero-tail rule: bits at positions >= the
     * bound frame count in the last word are zero (apollo::
     * maskTailWords in util/bitvec.hh states the rule; the streaming
     * popcount kernels rely on it).
     */
    void fillColumn(uint32_t sig_id, uint64_t *out);

    /**
     * Fill a whole packed proxy matrix: column k of @p out is the
     * toggle column of sig_ids[k] over the bound segment. Resets
     * @p out to (frames, sig_ids.size()); the column-major 64-cycle
     * word layout is exactly what the bit-parallel streaming
     * inference kernels consume.
     */
    void fillMatrix(std::span<const uint32_t> sig_ids,
                    BitColumnMatrix &out);

    /**
     * Reference mode for the differential harness and the seed-cost
     * baseline: per-cycle ActivityEngine::toggles calls, no batching.
     */
    bool naive = false;

  private:
    void fillNaive(uint32_t sig_id, uint64_t *out) const;
    void drawColumn(uint64_t seed);
    const uint64_t *busEventMask(const Signal &sig);

    const ActivityEngine &engine_;
    std::span<const ActivityFrame> frames_;
    size_t n_ = 0;
    size_t words_ = 0;
    uint64_t cycle0_ = 0;
    bool contiguousCycles_ = false;
    /** Per-unit clock-enable masks, numUnits x wordCount(). */
    std::vector<uint64_t> enabledMask_;
    /** Column-major copies of the per-unit activity/data factors. */
    std::vector<float> actU_;
    std::vector<float> dataU_;
    /** Batch draw scratch. */
    std::vector<float> draws_;
    std::vector<uint64_t> cycles_;
    /** (busId << 8 | latency) -> event-pass mask. */
    std::unordered_map<uint64_t, std::vector<uint64_t>> busMasks_;
};

} // namespace apollo

#endif // APOLLO_ACTIVITY_TOGGLE_COLUMNS_HH
