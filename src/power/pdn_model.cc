#include "power/pdn_model.hh"

#include <cmath>

namespace apollo {

PdnModel::PdnModel(const PdnParams &params) : params_(params) {}

void
PdnModel::reset()
{
    x1_ = 0.0;
    x2_ = 0.0;
    lastCurrent_ = 0.0;
    first_ = true;
}

double
PdnModel::step(double current)
{
    // Underdamped second-order resonator driven by dI (current steps):
    //   x'' + 2*zeta*w0*x' + w0^2*x = dynamicGain * w0^2 * dI
    // discretized with unit time step (one CPU cycle).
    const double w0 =
        2.0 * M_PI / params_.resonancePeriodCycles;
    const double di = first_ ? 0.0 : current - lastCurrent_;
    first_ = false;
    lastCurrent_ = current;

    const double accel = params_.dynamicGain * w0 * w0 * di -
                         2.0 * params_.damping * w0 * x2_ -
                         w0 * w0 * x1_;
    x2_ += accel;
    x1_ += x2_;

    return params_.vdd - params_.rStatic * current - x1_;
}

std::vector<double>
PdnModel::simulate(const std::vector<double> &current)
{
    std::vector<double> voltage;
    voltage.reserve(current.size());
    for (double i : current)
        voltage.push_back(step(i));
    return voltage;
}

} // namespace apollo
