/**
 * @file
 * PdnModel: a second-order (RLC) power-delivery-network response model
 * used by the Ldi/dt droop application (§8.2). The supply voltage seen
 * by the core responds to current-demand steps with an underdamped
 * second-order transfer function — the classic mid-frequency PDN
 * resonance that makes di/dt events dangerous within < 10 cycles.
 */

#ifndef APOLLO_POWER_PDN_MODEL_HH
#define APOLLO_POWER_PDN_MODEL_HH

#include <cstddef>
#include <vector>

namespace apollo {

/** PDN electrical parameters (normalized units). */
struct PdnParams
{
    double vdd = 0.75;
    /** Resonant frequency in cycles (period of the LC resonance). */
    double resonancePeriodCycles = 24.0;
    /** Damping ratio (< 1: underdamped). */
    double damping = 0.25;
    /** Static IR-drop coefficient: volts per unit current. */
    double rStatic = 0.0008;
    /** Dynamic droop gain: volts per unit current step. */
    double dynamicGain = 0.004;
};

/**
 * Discrete-time state-space simulation of the PDN: feed per-cycle
 * current demand, read per-cycle supply voltage at the core.
 */
class PdnModel
{
  public:
    explicit PdnModel(const PdnParams &params = PdnParams{});

    /** Advance one cycle with current demand @p current; returns Vdd. */
    double step(double current);

    /** Run a whole current trace; returns the voltage trace. */
    std::vector<double> simulate(const std::vector<double> &current);

    void reset();

    const PdnParams &params() const { return params_; }

  private:
    PdnParams params_;
    double x1_ = 0.0; ///< droop state (volts below nominal)
    double x2_ = 0.0; ///< droop state derivative
    double lastCurrent_ = 0.0;
    bool first_ = true;
};

} // namespace apollo

#endif // APOLLO_POWER_PDN_MODEL_HH
