/**
 * @file
 * PowerOracle: the ground-truth per-cycle power model, standing in for a
 * commercial sign-off flow (PowerPro in the paper).
 *
 * Per-cycle power (Eq. 2 of the paper, plus the smaller components):
 *
 *   dyn[i]    = 1/2 V^2 * sum of cap over toggling signals
 *   glitch[i] = glitchFactor * sum over toggling comb wires of
 *               cap * glitchDepth * unitActivity   (nonlinear residual)
 *   sc[i]     = shortCircuitFactor * dyn[i]
 *   leak      = leakFraction * totalCap * 1/2 V^2  (constant)
 *   noise     = small multiplicative measurement noise (hash-seeded)
 *
 * The dominant dyn term is exactly linear in the toggle bits with
 * heterogeneous per-signal coefficients — the structure APOLLO's sparse
 * linear proxy model exploits. The glitch and noise terms bound the
 * achievable R^2 below 1.0, as on the real designs.
 */

#ifndef APOLLO_POWER_POWER_ORACLE_HH
#define APOLLO_POWER_POWER_ORACLE_HH

#include <array>
#include <cstdint>
#include <span>

#include "rtl/netlist.hh"
#include "uarch/activity_frame.hh"

namespace apollo {

/** Oracle tuning parameters. */
struct PowerParams
{
    double vdd = 0.75;
    double glitchFactor = 0.11;
    double shortCircuitFactor = 0.07;
    /** Leakage as a fraction of total capacitance (temperature-fixed). */
    double leakFraction = 0.008;
    /** Relative sigma of per-cycle measurement noise. */
    double noiseSigma = 0.035;
    /** Global scale applied last (cosmetic, for paper-like magnitudes). */
    double outputScale = 1.0 / 400.0;
};

/** Per-cycle power components (pre-outputScale breakdown sums). */
struct PowerBreakdown
{
    double dynamic = 0.0;
    double glitch = 0.0;
    double shortCircuit = 0.0;
    double leakage = 0.0;
    std::array<double, numUnits> unitDynamic{};

    double
    total() const
    {
        return dynamic + glitch + shortCircuit + leakage;
    }
};

/** Ground-truth power calculator. */
class PowerOracle
{
  public:
    explicit PowerOracle(const Netlist &netlist,
                         const PowerParams &params = PowerParams{});

    /**
     * Power of one cycle given the toggle bits of *all* signals packed in
     * @p row_bits (bit j = signal j) and the cycle's frame.
     */
    double cyclePower(const ActivityFrame &frame,
                      std::span<const uint64_t> row_bits) const;

    /** Same, with a per-unit/per-component breakdown. */
    PowerBreakdown cyclePowerBreakdown(
        const ActivityFrame &frame,
        std::span<const uint64_t> row_bits) const;

    /**
     * Per-signal contribution pieces, used by the column-parallel
     * dataset builder: the linear cap term and the activity-scaled
     * glitch term for signal @p sig_id toggling under @p frame.
     */
    double signalContribution(uint32_t sig_id,
                              const ActivityFrame &frame) const;

    /**
     * Finalize a per-cycle accumulated contribution sum into total
     * power: applies short-circuit, leakage, noise, and output scaling.
     * @p cycle_key seeds the noise (use a globally unique cycle id).
     */
    double finalize(double contribution_sum, uint64_t cycle_key) const;

    const PowerParams &params() const { return params_; }
    double halfVddSquared() const { return halfV2_; }

    /** Constant leakage power (post-outputScale). */
    double leakagePower() const;

  private:
    const Netlist &netlist_;
    PowerParams params_;
    double halfV2_;
    uint64_t noiseSeed_;
};

} // namespace apollo

#endif // APOLLO_POWER_POWER_ORACLE_HH
