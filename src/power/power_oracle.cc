#include "power/power_oracle.hh"

#include <bit>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace apollo {

PowerOracle::PowerOracle(const Netlist &netlist, const PowerParams &params)
    : netlist_(netlist), params_(params),
      halfV2_(0.5 * params.vdd * params.vdd),
      noiseSeed_(hashMix(netlist.seed() ^ 0x90153ULL))
{}

double
PowerOracle::signalContribution(uint32_t sig_id,
                                const ActivityFrame &frame) const
{
    const Signal &sig = netlist_.signal(sig_id);
    double c = sig.cap;
    if (sig.kind == SignalKind::CombWire && sig.glitchDepth > 0) {
        // Glitch energy grows with logic depth and with how active the
        // unit is (more input arrival skew) — a nonlinear residual the
        // linear proxy model cannot capture exactly.
        c += params_.glitchFactor * sig.cap * sig.glitchDepth *
             frame.act(sig.unit);
    }
    return halfV2_ * c;
}

double
PowerOracle::finalize(double contribution_sum, uint64_t cycle_key) const
{
    double p = contribution_sum;
    p += params_.shortCircuitFactor * contribution_sum;
    p += params_.leakFraction * netlist_.totalCap() * halfV2_;
    // Mild multiplicative measurement noise (two-hash triangular draw,
    // cheap and deterministic).
    const uint64_t h = hashCombine(noiseSeed_, cycle_key);
    const double u = hashToUnitFloat(h) + hashToUnitFloat(hashMix(h)) -
                     1.0; // triangular in (-1, 1)
    p *= 1.0 + params_.noiseSigma * 1.6 * u;
    return p * params_.outputScale;
}

double
PowerOracle::leakagePower() const
{
    return params_.leakFraction * netlist_.totalCap() * halfV2_ *
           params_.outputScale;
}

double
PowerOracle::cyclePower(const ActivityFrame &frame,
                        std::span<const uint64_t> row_bits) const
{
    const size_t m = netlist_.signalCount();
    APOLLO_REQUIRE(row_bits.size() * 64 >= m, "row bitmap too small");
    double acc = 0.0;
    for (size_t w = 0; w < row_bits.size(); ++w) {
        uint64_t bits = row_bits[w];
        while (bits) {
            const size_t j =
                w * 64 + static_cast<size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            if (j >= m)
                break;
            acc += signalContribution(static_cast<uint32_t>(j), frame);
        }
    }
    return finalize(acc, frame.cycle);
}

PowerBreakdown
PowerOracle::cyclePowerBreakdown(const ActivityFrame &frame,
                                 std::span<const uint64_t> row_bits) const
{
    const size_t m = netlist_.signalCount();
    PowerBreakdown bd;
    for (size_t w = 0; w < row_bits.size(); ++w) {
        uint64_t bits = row_bits[w];
        while (bits) {
            const size_t j =
                w * 64 + static_cast<size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            if (j >= m)
                break;
            const Signal &sig = netlist_.signal(j);
            const double dyn = halfV2_ * sig.cap;
            bd.dynamic += dyn;
            bd.unitDynamic[static_cast<size_t>(sig.unit)] += dyn;
            if (sig.kind == SignalKind::CombWire && sig.glitchDepth > 0) {
                bd.glitch += halfV2_ * params_.glitchFactor * sig.cap *
                             sig.glitchDepth * frame.act(sig.unit);
            }
        }
    }
    bd.shortCircuit =
        params_.shortCircuitFactor * (bd.dynamic + bd.glitch);
    bd.leakage = params_.leakFraction * netlist_.totalCap() * halfV2_;
    return bd;
}

} // namespace apollo
