/**
 * @file
 * OracleAccumulator: vectorized per-cycle ground-truth power
 * accumulation over packed toggle columns — the bit-kernel replacement
 * for the scalar per-signal loop of the GA fitness path.
 *
 * The oracle's per-toggle contribution decomposes per signal j into a
 * static part and an activity-scaled glitch part:
 *
 *   contribution(j, i) = base[j] + glitch[j] * act(unit_j, i)
 *   base[j]   = 1/2 V^2 * cap_j                      (all signals)
 *   glitch[j] = 1/2 V^2 * glitchFactor * cap_j * glitchDepth_j
 *               (CombWire with glitchDepth > 0, else 0)
 *
 * so a cycle's contribution sum is one weighted bit-column accumulation
 * per signal (util/bitvec_kernels axpy: one float add per set bit) into
 * a base accumulator plus per-unit glitch accumulators, combined per
 * cycle in double with the unit activity factors.
 *
 * Defined accumulation order (docs/INTERNALS.md §9): float adds in
 * ascending-signal order for the base and per-unit glitch accumulators
 * (addColumn must be called in ascending sig_id order), then the double
 * combine base + sum over ascending units of act * glitch, then
 * PowerOracle::finalize. The axpy kernel contract (exactly one float
 * add per set bit on every dispatch path) makes the result bit-exact
 * against a scalar transcription of the same order — the src/ref
 * oracle of the differential harness.
 */

#ifndef APOLLO_POWER_ORACLE_ACCUMULATOR_HH
#define APOLLO_POWER_ORACLE_ACCUMULATOR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "power/power_oracle.hh"

namespace apollo {

/** Weighted toggle-column power accumulation (see file docs). */
class OracleAccumulator
{
  public:
    OracleAccumulator(const Netlist &netlist, const PowerOracle &oracle);

    /** Start a pass over @p n_cycles cycles (resets accumulators). */
    void begin(size_t n_cycles);

    /**
     * Accumulate the packed toggle column of @p sig_id
     * ((n_cycles + 63) / 64 words, tail bits zero). Columns must be
     * added in ascending sig_id order.
     */
    void addColumn(uint32_t sig_id, const uint64_t *words);

    /**
     * Combine and finalize: out[i] = finalize(sum_i * scale, i) where
     * scale is the signal-sampling stride compensation.
     */
    void finish(std::span<const ActivityFrame> frames, double scale,
                std::vector<double> &out) const;

    /** Static per-signal weights (shared with the scalar fallback). */
    float baseWeight(uint32_t sig_id) const { return baseW_[sig_id]; }
    float glitchWeight(uint32_t sig_id) const { return glitchW_[sig_id]; }

  private:
    const Netlist &netlist_;
    const PowerOracle &oracle_;
    std::vector<float> baseW_;
    std::vector<float> glitchW_;
    std::vector<uint8_t> unitOf_;
    size_t n_ = 0;
    size_t words_ = 0;
    std::vector<float> baseAcc_;
    /** numUnits x n_ glitch accumulators (only used units touched). */
    std::vector<float> glitchAcc_;
    std::vector<bool> unitUsed_;
};

} // namespace apollo

#endif // APOLLO_POWER_ORACLE_ACCUMULATOR_HH
