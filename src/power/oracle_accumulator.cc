#include "power/oracle_accumulator.hh"

#include "util/bitvec_kernels.hh"
#include "util/logging.hh"

namespace apollo {

OracleAccumulator::OracleAccumulator(const Netlist &netlist,
                                     const PowerOracle &oracle)
    : netlist_(netlist), oracle_(oracle)
{
    const size_t m = netlist.signalCount();
    baseW_.resize(m);
    glitchW_.resize(m);
    unitOf_.resize(m);
    const double half_v2 = oracle.halfVddSquared();
    const double gf = oracle.params().glitchFactor;
    for (size_t j = 0; j < m; ++j) {
        const Signal &sig = netlist.signal(j);
        baseW_[j] = static_cast<float>(half_v2 * sig.cap);
        glitchW_[j] =
            (sig.kind == SignalKind::CombWire && sig.glitchDepth > 0)
                ? static_cast<float>(half_v2 * gf * sig.cap *
                                     sig.glitchDepth)
                : 0.0f;
        unitOf_[j] = static_cast<uint8_t>(sig.unit);
    }
}

void
OracleAccumulator::begin(size_t n_cycles)
{
    n_ = n_cycles;
    words_ = (n_ + 63) / 64;
    baseAcc_.assign(n_, 0.0f);
    glitchAcc_.assign(numUnits * n_, 0.0f);
    unitUsed_.assign(numUnits, false);
}

void
OracleAccumulator::addColumn(uint32_t sig_id, const uint64_t *words)
{
    bitkernels::axpyWords(words, words_, n_, baseW_[sig_id],
                          baseAcc_.data());
    const float gw = glitchW_[sig_id];
    if (gw != 0.0f) {
        const size_t u = unitOf_[sig_id];
        unitUsed_[u] = true;
        bitkernels::axpyWords(words, words_, n_, gw,
                              glitchAcc_.data() + u * n_);
    }
}

void
OracleAccumulator::finish(std::span<const ActivityFrame> frames,
                          double scale, std::vector<double> &out) const
{
    APOLLO_REQUIRE(frames.size() == n_, "frame count mismatch");
    out.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
        double sum = static_cast<double>(baseAcc_[i]);
        for (size_t u = 0; u < numUnits; ++u) {
            if (!unitUsed_[u])
                continue;
            sum += static_cast<double>(frames[i].activity[u]) *
                   static_cast<double>(glitchAcc_[u * n_ + i]);
        }
        out[i] = oracle_.finalize(sum * scale, i);
    }
}

} // namespace apollo
