/**
 * @file
 * The APOLLO public umbrella header: include this one header and use
 * the entry-point layer — apollo::Trainer, apollo::Inference,
 * apollo::Flows — plus whatever substrate types the task needs.
 *
 * Layering:
 *  - Trainer    Fig. 5(a) model construction: MCP proxy selection +
 *               ridge relaxation, per-cycle or tau-aggregated
 *               (configured with the validated TrainOptions builder).
 *  - Inference  unified batch + streaming inference over a trained
 *               model (float design-time estimator or quantized OPM).
 *               Streaming pumps any ProxyChunkReader into any
 *               PowerSink with bounded memory and results
 *               bit-identical to the batch calls.
 *  - Flows      the Fig. 7 design-time flow comparisons, including the
 *               streaming emulator-assisted flow that never
 *               materializes the proxy trace.
 *  - serve::*   the serving layer: ModelRegistry + SessionManager
 *               multiplex N concurrent power-introspection sessions
 *               over shared immutable models, bit-identical to the
 *               one-stream engine, plus the versioned wire protocol
 *               behind `apollo_cli serve` (docs/SERVE_SCHEMA.md).
 *
 * Everything lives in namespace apollo. The per-module headers remain
 * valid includes; this header is the supported surface for examples,
 * benches, and external consumers.
 */

#ifndef APOLLO_APOLLO_HH
#define APOLLO_APOLLO_HH

// Substrate: utilities, ISA, RTL, microarchitecture, power.
#include "util/bitvec.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/status.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

#include "isa/instruction.hh"
#include "isa/program.hh"

#include "rtl/design_builder.hh"
#include "rtl/netlist.hh"
#include "rtl/signal.hh"

#include "uarch/activity_frame.hh"
#include "uarch/core.hh"
#include "uarch/throttle.hh"

#include "activity/activity_engine.hh"
#include "power/pdn_model.hh"
#include "power/power_oracle.hh"

// Traces and datasets.
#include "trace/dataset.hh"
#include "trace/dataset_io.hh"
#include "trace/stream_reader.hh"
#include "trace/toggle_trace.hh"
#include "trace/vcd.hh"

// Training-data generation.
#include "gen/ga_generator.hh"
#include "gen/test_suite.hh"

// Solvers and models.
#include "ml/coordinate_descent.hh"
#include "ml/feature_view.hh"
#include "ml/kmeans.hh"
#include "ml/metrics.hh"
#include "ml/neural_net.hh"
#include "ml/pca.hh"
#include "ml/penalty.hh"
#include "ml/solver_path.hh"

#include "core/abstract_model.hh"
#include "core/apollo_model.hh"
#include "core/apollo_trainer.hh"
#include "core/baselines.hh"
#include "core/counter_model.hh"
#include "core/multi_cycle.hh"
#include "core/proxy_selector.hh"

// The runtime OPM.
#include "opm/baseline_opms.hh"
#include "opm/hls_emitter.hh"
#include "opm/opm_hardware.hh"
#include "opm/opm_simulator.hh"
#include "opm/quantize.hh"

// Flows, streaming engine, droop analysis, closed-loop control.
#include "flow/flows.hh"
#include "flow/stream_engine.hh"
#include "droop/droop.hh"
#include "control/closed_loop.hh"
#include "control/droop_controller.hh"
#include "control/droop_lab.hh"

// The serving layer (v1): a model registry plus a session manager
// multiplexing N concurrent trace-to-power streams, with the
// versioned line-delimited wire form `apollo_cli serve` speaks
// (docs/SERVE_SCHEMA.md). Everything lives in namespace
// apollo::serve.
#include "serve/model_registry.hh"
#include "serve/serve_loop.hh"
#include "serve/session_manager.hh"
#include "serve/wire.hh"

namespace apollo {

/** Library version string ("<major>.<minor>"). */
const char *apolloVersion();

/**
 * Validated builder for the training configuration. Defaults (also the
 * ApolloTrainConfig/ProxySelectorConfig defaults):
 *
 *   targetQ            159     proxies to select (the paper's N1 Q)
 *   penalty            Mcp     selection penalty family
 *   gamma              10.0    MCP concavity
 *   nonneg             false   constrain weights to R+ (Eq. 1)
 *   relaxRidge         1e-3    weak L2 for the relaxation refit
 *   selectionCycleCap  0       selection-stage cycle subsample (0=off)
 *   screen             true    strong-rule screening in the CD solver
 *   parallel           true    parallel gradient/norm passes
 *
 * Setters validate eagerly (throwing FatalError on out-of-domain
 * values, the configuration-error regime) and chain:
 *
 *   Trainer trainer(TrainOptions().targetQ(40).nonneg(true));
 */
class TrainOptions
{
  public:
    TrainOptions() = default;

    TrainOptions &
    targetQ(size_t q)
    {
        APOLLO_REQUIRE(q > 0, "targetQ must be positive");
        config_.selection.targetQ = q;
        return *this;
    }

    TrainOptions &
    penalty(PenaltyKind kind)
    {
        config_.selection.kind = kind;
        return *this;
    }

    TrainOptions &
    gamma(double g)
    {
        APOLLO_REQUIRE(g > 1.0, "MCP gamma must exceed 1");
        config_.selection.gamma = g;
        return *this;
    }

    TrainOptions &
    nonneg(bool on)
    {
        config_.selection.nonneg = on;
        config_.relaxNonneg = on;
        return *this;
    }

    TrainOptions &
    relaxRidge(double ridge)
    {
        APOLLO_REQUIRE(ridge >= 0.0, "relax ridge must be >= 0");
        config_.relaxRidge = ridge;
        return *this;
    }

    TrainOptions &
    selectionCycleCap(size_t cap)
    {
        config_.selectionCycleCap = cap;
        return *this;
    }

    TrainOptions &
    screen(bool on)
    {
        config_.selection.screen = on;
        return *this;
    }

    TrainOptions &
    parallel(bool on)
    {
        config_.selection.parallel = on;
        return *this;
    }

    const ApolloTrainConfig &config() const { return config_; }

  private:
    ApolloTrainConfig config_;
};

/**
 * Entry point for model construction (Fig. 5(a)). Thin, stateless
 * facade over trainApollo/trainMultiCycle with a validated
 * configuration.
 */
class Trainer
{
  public:
    explicit Trainer(TrainOptions options = {})
        : config_(options.config())
    {}

    explicit Trainer(ApolloTrainConfig config)
        : config_(std::move(config))
    {}

    /** MCP selection + ridge relaxation on a per-cycle dataset. */
    ApolloTrainResult
    train(const Dataset &train_set,
          const std::string &design_name = "") const
    {
        return trainApollo(train_set, config_, design_name);
    }

    /** APOLLO_tau: train at interval size tau (§4.5). */
    MultiCycleModel
    trainTau(const Dataset &train_set, uint32_t tau,
             const std::string &design_name = "") const
    {
        return trainMultiCycle(train_set, tau, config_, design_name);
    }

    const ApolloTrainConfig &config() const { return config_; }

  private:
    ApolloTrainConfig config_;
};

/**
 * Unified batch + streaming inference over a trained model.
 *
 * Float engine (design-time estimator):
 *   Inference inf(result.model);
 *   auto p = inf.predict(proxies);              // per-cycle, batch
 *   inf.stream(reader, sink);                   // per-cycle, streaming
 *   inf.stream(reader, sink,
 *              StreamConfig().withWindowT(32)); // Eq. (9) windows
 *
 * Quantized engine (bit-true OPM):
 *   Inference opm(quantizeModel(result.model, 10), 32);
 *   auto hw = opm.predict(proxies);             // == OpmSimulator
 *   opm.stream(reader, sink);                   // same, bounded memory
 *
 * Streaming and batch calls produce bit-identical samples (see
 * flow/stream_engine.hh for the argument).
 */
class Inference
{
  public:
    /** Float-weight engine over proxy-layout traces. */
    explicit Inference(ApolloModel model)
        : model_(std::move(model)), engine_(model_)
    {}

    /** Quantized fixed-point engine (one sample per T-cycle window). */
    Inference(QuantizedModel model, uint32_t window_T)
        : model_(model.toFloatModel()), qmodel_(std::move(model)),
          windowT_(window_T), engine_(*qmodel_, window_T)
    {}

    bool quantized() const { return qmodel_.has_value(); }
    size_t proxyCount() const { return model_.proxyIds.size(); }
    const ApolloModel &model() const { return model_; }

    /**
     * Batch inference over a proxy-layout matrix: per-cycle power for
     * the float engine, one bit-true sample per T-cycle window for the
     * quantized engine.
     */
    std::vector<float>
    predict(const BitColumnMatrix &Xq) const
    {
        if (qmodel_) {
            OpmSimulator sim(*qmodel_, windowT_);
            return sim.simulate(Xq);
        }
        return model_.predictProxies(Xq);
    }

    /** Per-cycle batch inference over a full M-column matrix. */
    std::vector<float>
    predictFull(const BitColumnMatrix &X) const
    {
        APOLLO_REQUIRE(!quantized(),
                       "predictFull is a float-engine call");
        return model_.predictFull(X);
    }

    /**
     * Eq. (9) batch inference: T-cycle window averages over the whole
     * trace (one segment, trailing partial window dropped).
     */
    std::vector<float>
    predictWindows(const BitColumnMatrix &Xq, uint32_t T) const
    {
        APOLLO_REQUIRE(!quantized(),
                       "predictWindows is a float-engine call; the "
                       "quantized engine windows via predict()");
        const MultiCycleModel mc{model_, 1};
        const SegmentInfo whole{"", 0, Xq.rows()};
        // Data errors (no full window) stay fatal at this facade, as
        // before the StatusOr conversion of predictWindowsProxies.
        return mc.predictWindowsProxies(
                     Xq, T, std::span<const SegmentInfo>(&whole, 1))
            .value();
    }

    /**
     * Streaming inference: pump @p reader to exhaustion into @p sink
     * with bounded memory. The quantized engine always windows at its
     * construction T; the float engine windows iff config.windowT > 0.
     */
    StatusOr<StreamStats>
    stream(ProxyChunkReader &reader, PowerSink &sink,
           const StreamConfig &config = {}) const
    {
        return engine_.run(reader, sink, config);
    }

  private:
    ApolloModel model_;
    std::optional<QuantizedModel> qmodel_;
    uint32_t windowT_ = 0;
    StreamingInference engine_;
};

/**
 * Entry point for the Fig. 7 design-time flows, including the
 * streaming emulator-assisted flow (proxy bits generated chunk by
 * chunk, power delivered to a sink — nothing trace-length-sized is
 * ever resident).
 */
class Flows
{
  public:
    explicit Flows(const Netlist &netlist,
                   const CoreParams &core_params = CoreParams::defaults(),
                   const PowerParams &power_params = PowerParams{})
        : flows_(netlist, core_params, power_params)
    {}

    /** Fig. 7(a): all-signal trace + ground-truth power. */
    FlowReport
    commercial(const Program &prog, uint64_t max_cycles)
    {
        return flows_.runCommercialFlow(prog, max_cycles);
    }

    /** Fig. 7(b): all-signal trace + APOLLO model inference. */
    FlowReport
    apolloAssisted(const Program &prog, uint64_t max_cycles,
                   const ApolloModel &model)
    {
        return flows_.runApolloFlow(prog, max_cycles, model);
    }

    /** Fig. 7(c): proxy-only trace + model inference (streaming). */
    FlowReport
    emulatorAssisted(const Program &prog, uint64_t max_cycles,
                     const ApolloModel &model)
    {
        return flows_.runEmulatorFlow(prog, max_cycles, model);
    }

    /** Fig. 7(c) with caller-owned sink: power never materializes. */
    FlowReport
    emulatorStreaming(const Program &prog, uint64_t max_cycles,
                      const ApolloModel &model, PowerSink &sink,
                      const StreamConfig &config = {})
    {
        return flows_.runEmulatorFlowStreaming(prog, max_cycles, model,
                                               sink, config);
    }

  private:
    DesignTimeFlows flows_;
};

} // namespace apollo

#endif // APOLLO_APOLLO_HH
