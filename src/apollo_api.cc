/**
 * @file
 * Out-of-line pieces of the public umbrella API (src/apollo.hh). Also
 * serves as the compile check that the umbrella header is
 * self-contained.
 */

#include "apollo.hh"

namespace apollo {

const char *
apolloVersion()
{
    // Bumped when the public entry-point surface changes shape.
    // 1.1: the serving layer (apollo::serve) joined the umbrella.
    return "1.1";
}

} // namespace apollo
