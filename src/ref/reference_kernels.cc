#include "ref/reference_kernels.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace apollo::ref {

namespace {

/**
 * One cycle's float weighted sum without the intercept: += weights[q]
 * for every set bit, ascending q, zero weights skipped (adding 0.0f is
 * not a no-op for -0.0 inputs, and the production axpy never performs
 * it either).
 */
float
cycleSumFloat(const ApolloModel &model, const BitColumnMatrix &X,
              size_t row, bool proxy_layout)
{
    float acc = 0.0f;
    for (size_t q = 0; q < model.proxyIds.size(); ++q) {
        const size_t col = proxy_layout ? q : model.proxyIds[q];
        if (model.weights[q] != 0.0f && X.get(row, col))
            acc += model.weights[q];
    }
    return acc;
}

std::vector<float>
predictRows(const ApolloModel &model, const BitColumnMatrix &X,
            bool proxy_layout)
{
    APOLLO_REQUIRE(model.proxyIds.size() == model.weights.size(),
                   "model arity mismatch");
    for (uint32_t id : model.proxyIds)
        APOLLO_REQUIRE(proxy_layout || id < X.cols(),
                       "proxy id out of range");
    if (proxy_layout)
        APOLLO_REQUIRE(X.cols() == model.proxyIds.size(),
                       "proxy matrix arity mismatch");
    std::vector<float> out(X.rows());
    for (size_t i = 0; i < X.rows(); ++i) {
        float acc = static_cast<float>(model.intercept);
        for (size_t q = 0; q < model.proxyIds.size(); ++q) {
            const size_t col = proxy_layout ? q : model.proxyIds[q];
            if (model.weights[q] != 0.0f && X.get(i, col))
                acc += model.weights[q];
        }
        out[i] = acc;
    }
    return out;
}

} // namespace

std::vector<float>
predictProxies(const ApolloModel &model, const BitColumnMatrix &Xq)
{
    return predictRows(model, Xq, true);
}

std::vector<float>
predictFull(const ApolloModel &model, const BitColumnMatrix &X)
{
    return predictRows(model, X, false);
}

std::vector<float>
predictWindowsProxies(const ApolloModel &model, const BitColumnMatrix &Xq,
                      uint32_t T, std::span<const SegmentInfo> segments)
{
    APOLLO_REQUIRE(T >= 1, "window size must be positive");
    APOLLO_REQUIRE(Xq.cols() == model.proxyIds.size(),
                   "proxy matrix arity mismatch");
    std::vector<float> out;
    for (const SegmentInfo &seg : segments) {
        const size_t windows = seg.cycles() / T;
        for (size_t w = 0; w < windows; ++w) {
            double acc = 0.0;
            for (uint32_t t = 0; t < T; ++t)
                acc += cycleSumFloat(model, Xq,
                                     seg.begin + w * T + t, true);
            out.push_back(static_cast<float>(
                model.intercept + acc / static_cast<double>(T)));
        }
    }
    return out;
}

QuantizedModel
quantizeModel(const ApolloModel &model, uint32_t bits)
{
    APOLLO_REQUIRE(bits >= 2 && bits <= 24, "bits out of range");
    QuantizedModel qm;
    qm.proxyIds = model.proxyIds;
    qm.bits = bits;

    double max_abs = 0.0;
    for (float w : model.weights)
        max_abs = std::max(max_abs, std::abs(static_cast<double>(w)));
    if (max_abs == 0.0)
        max_abs = 1.0;
    const int64_t qmax = (int64_t{1} << (bits - 1)) - 1;
    qm.scale = max_abs / static_cast<double>(qmax);

    qm.qweights.resize(model.weights.size());
    for (size_t q = 0; q < model.weights.size(); ++q) {
        // Round half away from zero, then saturate at +/- qmax.
        const double exact =
            static_cast<double>(model.weights[q]) / qm.scale;
        int64_t v = static_cast<int64_t>(
            exact >= 0.0 ? std::floor(exact + 0.5)
                         : std::ceil(exact - 0.5));
        v = std::clamp<int64_t>(v, -qmax, qmax);
        qm.qweights[q] = static_cast<int32_t>(v);
    }
    const double exact_b = model.intercept / qm.scale;
    qm.qintercept = static_cast<int64_t>(
        exact_b >= 0.0 ? std::floor(exact_b + 0.5)
                       : std::ceil(exact_b - 0.5));
    return qm;
}

std::vector<float>
opmSimulate(const QuantizedModel &model, const BitColumnMatrix &Xq,
            uint32_t T)
{
    APOLLO_REQUIRE(T >= 1 && (T & (T - 1)) == 0,
                   "T must be a power of two");
    APOLLO_REQUIRE(Xq.cols() == model.proxyCount(),
                   "proxy matrix arity mismatch");
    uint32_t shift = 0;
    while ((uint32_t{1} << shift) < T)
        shift++;

    std::vector<float> out;
    int64_t accumulator = 0;
    uint32_t phase = 0;
    for (size_t i = 0; i < Xq.rows(); ++i) {
        int64_t cycle_sum = model.qintercept;
        for (size_t q = 0; q < Xq.cols(); ++q)
            if (Xq.get(i, q))
                cycle_sum += model.qweights[q];
        accumulator += cycle_sum;
        phase++;
        if (phase == T) {
            out.push_back(static_cast<float>(
                model.dequantize(accumulator >> shift)));
            accumulator = 0;
            phase = 0;
        }
    }
    return out;
}

std::vector<int64_t>
opmSegmentSums(const QuantizedModel &model, const BitColumnMatrix &Xq,
               uint32_t T, uint32_t phase0)
{
    APOLLO_REQUIRE(T >= 1 && phase0 < T, "window phase out of range");
    APOLLO_REQUIRE(Xq.cols() == model.proxyCount(),
                   "proxy matrix arity mismatch");
    std::vector<int64_t> out;
    int64_t seg_sum = 0;
    uint32_t phase = phase0;
    uint32_t in_segment = 0;
    for (size_t i = 0; i < Xq.rows(); ++i) {
        int64_t cycle_sum = model.qintercept;
        for (size_t q = 0; q < Xq.cols(); ++q)
            if (Xq.get(i, q))
                cycle_sum += model.qweights[q];
        seg_sum += cycle_sum;
        in_segment++;
        phase++;
        if (phase == T) {
            out.push_back(seg_sum);
            seg_sum = 0;
            phase = 0;
            in_segment = 0;
        }
    }
    if (in_segment > 0)
        out.push_back(seg_sum);
    return out;
}

CycleSumBounds
opmCycleSumBounds(const QuantizedModel &model)
{
    CycleSumBounds bounds;
    bounds.minSum = bounds.maxSum = model.qintercept;
    for (int32_t qw : model.qweights) {
        if (qw > 0)
            bounds.maxSum += qw;
        else
            bounds.minSum += qw;
    }
    return bounds;
}

} // namespace apollo::ref
