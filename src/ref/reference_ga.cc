#include "ref/reference_ga.hh"

namespace apollo::ref {

std::vector<uint8_t>
toggleColumn(const ActivityEngine &engine,
             std::span<const ActivityFrame> frames, uint32_t sig_id)
{
    std::vector<uint8_t> out(frames.size(), 0);
    for (size_t i = 0; i < frames.size(); ++i)
        out[i] = engine.toggles(sig_id, frames, i, 0) ? 1 : 0;
    return out;
}

std::vector<double>
fitnessCyclePowers(const Netlist &netlist, const ActivityEngine &engine,
                   const PowerOracle &oracle,
                   std::span<const ActivityFrame> frames, uint32_t stride)
{
    const double half_v2 = oracle.halfVddSquared();
    const double glitch_factor = oracle.params().glitchFactor;
    const size_t m = netlist.signalCount();
    const size_t n = frames.size();

    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) {
        float base = 0.0f;
        float glitch[numUnits] = {};
        for (size_t j = 0; j < m; j += stride) {
            const auto sig_id = static_cast<uint32_t>(j);
            if (!engine.toggles(sig_id, frames, i, 0))
                continue;
            const Signal &sig = netlist.signal(sig_id);
            base += static_cast<float>(half_v2 * sig.cap);
            if (sig.kind == SignalKind::CombWire && sig.glitchDepth > 0)
                glitch[static_cast<size_t>(sig.unit)] +=
                    static_cast<float>(half_v2 * glitch_factor *
                                       sig.cap * sig.glitchDepth);
        }
        double sum = static_cast<double>(base);
        for (size_t u = 0; u < numUnits; ++u)
            sum += static_cast<double>(frames[i].activity[u]) *
                   static_cast<double>(glitch[u]);
        out[i] =
            oracle.finalize(sum * static_cast<double>(stride), i);
    }
    return out;
}

double
fitnessAveragePower(const Netlist &netlist, const ActivityEngine &engine,
                    const PowerOracle &oracle,
                    std::span<const ActivityFrame> frames,
                    uint32_t stride)
{
    if (frames.empty())
        return 0.0;
    const std::vector<double> powers =
        fitnessCyclePowers(netlist, engine, oracle, frames, stride);
    double total = 0.0;
    for (double p : powers)
        total += p;
    return total / static_cast<double>(powers.size());
}

} // namespace apollo::ref
