/**
 * @file
 * Dense, obviously-correct reference coordinate descent: plain cyclic
 * sweeps over every live column, per-element double-precision dot
 * products through FeatureView::value(), no screening, no working set,
 * no gradient caching, no SIMD, no threads. The penalty math (Eq. 5 /
 * Eq. 6 closed forms) is transcribed here independently of
 * ml/penalty.cc so the production solver and its oracle share no
 * arithmetic.
 *
 * The reference mirrors the production solver's *mathematical*
 * iteration (intercept re-centering then one cyclic pass, repeated to
 * the same tolerance) but not its implementation, so converged
 * solutions agree to solver tolerance rather than bit-exactly; the
 * differential harness additionally certifies the production solution
 * directly via kktViolation(), which is an optimality check
 * independent of either iteration.
 */

#ifndef APOLLO_REF_REFERENCE_SOLVER_HH
#define APOLLO_REF_REFERENCE_SOLVER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ml/coordinate_descent.hh"
#include "ml/feature_view.hh"

namespace apollo::ref {

/** Reference fit output (double precision throughout). */
struct RefFitResult
{
    std::vector<double> w;
    double intercept = 0.0;
    uint32_t sweeps = 0;
    bool converged = false;

    std::vector<uint32_t> support() const;
};

/**
 * Fit @p config on (X, y) by naive full-matrix cyclic coordinate
 * descent. Honors penalty kind/lambda/gamma/lambda2/nonneg,
 * fitIntercept, maxSweeps, and tol; ignores the screening fields
 * (the reference never screens).
 */
RefFitResult fit(const FeatureView &X, std::span<const float> y,
                 const CdConfig &config);

/**
 * Largest lambda with an all-zero L1-family solution, computed the
 * slow way: max_j |<x_j, y - mean(y)>| / N with per-element double
 * accumulation.
 */
double lambdaMax(const FeatureView &X, std::span<const float> y);

/**
 * Independent KKT certificate for a solution of the penalized problem:
 * for each live column, the fixed-point residual of the coordinate
 * map, |update(g_j / N + a_j w_j, a_j) - w_j| * sqrt(a_j), where g_j
 * is the naive double dot of column j with the exact residual
 * y - X w - b. At an exact coordinate-wise optimum every term is zero;
 * the returned value is the maximum over columns (same scaling as the
 * solvers' convergence metric). Works for every penalty family,
 * including nonneg constraints and the non-convex MCP (where it
 * certifies coordinate-wise optimality).
 */
double kktViolation(const FeatureView &X, std::span<const float> y,
                    std::span<const float> w, double intercept,
                    const PenaltyConfig &penalty);

/** Penalized objective (1/2N)||y - Xw - b||^2 + sum_j P(|w_j|),
 *  evaluated naively in double. */
double objective(const FeatureView &X, std::span<const float> y,
                 std::span<const float> w, double intercept,
                 const PenaltyConfig &penalty);

} // namespace apollo::ref

#endif // APOLLO_REF_REFERENCE_SOLVER_HH
