/**
 * @file
 * Deliberately naive, obviously-correct reference implementations of
 * every production inference / quantization path. These are the
 * independent oracles of the differential-testing layer
 * (docs/INTERNALS.md §8): each function is a literal transcription of
 * the paper equation it implements — per-element loops, no screening,
 * no SIMD kernels, no chunking, no shared code with the fast paths
 * beyond the data containers — so a bug in an optimized path cannot
 * hide in its oracle.
 *
 * Where a production path is *defined* to be bit-exact (per-cycle
 * float inference, Eq. (9) windows, integer OPM arithmetic), the
 * reference reproduces the same abstract accumulation order (ascending
 * proxy index, then ascending cycle) so the differential comparison is
 * exact equality; see each function's contract.
 */

#ifndef APOLLO_REF_REFERENCE_KERNELS_HH
#define APOLLO_REF_REFERENCE_KERNELS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "core/apollo_model.hh"
#include "opm/quantize.hh"
#include "trace/dataset.hh"
#include "util/bitvec.hh"

namespace apollo::ref {

/**
 * Eq. (1) per-cycle inference over a proxy-layout matrix, one row at a
 * time: out[i] = float(intercept) then += weights[q] for every set bit
 * in ascending q (zero weights skipped). This is the same per-element
 * float addition sequence the production column-axpy kernel performs,
 * so results must equal ApolloModel::predictProxies bit for bit.
 */
std::vector<float> predictProxies(const ApolloModel &model,
                                  const BitColumnMatrix &Xq);

/** Same over a full M-signal matrix (only proxy columns read);
 *  bit-exact oracle for ApolloModel::predictFull. */
std::vector<float> predictFull(const ApolloModel &model,
                               const BitColumnMatrix &X);

/**
 * Literal tau-window averaging — NOT the Eq. (9) rearrangement: for
 * each full T-cycle window (never straddling segment boundaries), sum
 * the per-cycle weighted sums in a double accumulator, divide by T,
 * add the intercept. Oracle for
 * MultiCycleModel::predictWindowsProxies and the streaming windowed
 * engine; bit-exact because the per-cycle float sums share the
 * ascending-q order and the window accumulation shares the
 * ascending-cycle double order.
 */
std::vector<float> predictWindowsProxies(
    const ApolloModel &model, const BitColumnMatrix &Xq, uint32_t T,
    std::span<const SegmentInfo> segments);

/**
 * Straightforward B-bit quantizer, written independently of
 * opm/quantize.cc: symmetric scale max|w| / (2^(B-1) - 1), round half
 * away from zero, clamp; intercept on the same scale. Field-exact
 * oracle for quantizeModel().
 */
QuantizedModel quantizeModel(const ApolloModel &model, uint32_t bits);

/**
 * Literal OPM evaluation: per cycle the integer sum of qintercept plus
 * every toggled proxy's qweight (ascending q; integer addition is
 * exact in any order), accumulated over T cycles, then an arithmetic
 * shift by log2(T) and dequantization. One output per complete
 * window. Bit-exact oracle for OpmSimulator::simulate and the
 * quantized streaming engine. @p T must be a power of two.
 */
std::vector<float> opmSimulate(const QuantizedModel &model,
                               const BitColumnMatrix &Xq, uint32_t T);

/**
 * Naive transcription of the bit-parallel kernel's contract
 * (opm/opm_bitparallel.hh): per-cycle integer sums (qintercept plus
 * every toggled proxy's qweight), grouped into T-cycle window
 * segments starting @p phase0 cycles into a window — one entry per
 * segment, including a trailing partial one. No popcounts, no packed
 * words: one cycle at a time via get(). Bit-exact oracle for
 * opmSegmentSums() under every kernel implementation.
 */
std::vector<int64_t> opmSegmentSums(const QuantizedModel &model,
                                    const BitColumnMatrix &Xq,
                                    uint32_t T, uint32_t phase0);

/**
 * Exact worst-case bounds of the OPM per-cycle sum: qintercept plus
 * the sum of all positive (resp. negative) quantized weights. Used to
 * verify the declared hardware widths actually cover every input.
 */
struct CycleSumBounds
{
    int64_t minSum = 0;
    int64_t maxSum = 0;
};
CycleSumBounds opmCycleSumBounds(const QuantizedModel &model);

} // namespace apollo::ref

#endif // APOLLO_REF_REFERENCE_KERNELS_HH
