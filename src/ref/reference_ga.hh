/**
 * @file
 * Naive references for the GA training-data generation pipeline
 * (docs/INTERNALS.md §8, §9): per-cycle toggle columns and the fitness
 * power estimate, written as literal transcriptions of the defined
 * per-cycle semantics — no batching, no bit kernels, no caching, no
 * shared code with activity/toggle_columns or power/oracle_accumulator
 * beyond the data containers.
 *
 * The production fitness pipeline is *defined* to be bit-exact against
 * this transcription (shared abstract accumulation order: float
 * contribution adds over ascending strided signals, double glitch
 * combine over ascending units, finalize, double mean over ascending
 * cycles), so the differential comparison is exact equality.
 */

#ifndef APOLLO_REF_REFERENCE_GA_HH
#define APOLLO_REF_REFERENCE_GA_HH

#include <cstdint>
#include <span>
#include <vector>

#include "activity/activity_engine.hh"
#include "power/power_oracle.hh"

namespace apollo::ref {

/**
 * Literal single-segment toggle column: out[i] = 1 iff
 * engine.toggles(sig_id, frames, i, 0). Oracle for
 * ToggleColumnGenerator::fillColumn (bit i of the packed words).
 */
std::vector<uint8_t> toggleColumn(const ActivityEngine &engine,
                                  std::span<const ActivityFrame> frames,
                                  uint32_t sig_id);

/**
 * Literal §4.1 fitness power transcription over one frame segment:
 * per cycle, a float sum of 1/2 V^2 cap_j over every toggling strided
 * signal (ascending j) plus per-unit float glitch sums
 * (1/2 V^2 glitchFactor cap_j glitchDepth_j for toggling CombWires),
 * combined in double over ascending units with the unit activity
 * factors, scaled by the stride, then PowerOracle::finalize. Weights
 * are recomputed here from the Signal fields and oracle parameters.
 * Bit-exact oracle for FitnessEvaluator::cyclePowers (both the
 * vectorized and the scalar production paths).
 */
std::vector<double> fitnessCyclePowers(
    const Netlist &netlist, const ActivityEngine &engine,
    const PowerOracle &oracle, std::span<const ActivityFrame> frames,
    uint32_t stride);

/**
 * Double mean of fitnessCyclePowers in ascending-cycle order (0.0 for
 * an empty segment). Bit-exact oracle for
 * FitnessEvaluator::averagePower — and thereby for every
 * GaIndividual::avgPower the GA pipeline records, cached or not.
 */
double fitnessAveragePower(const Netlist &netlist,
                           const ActivityEngine &engine,
                           const PowerOracle &oracle,
                           std::span<const ActivityFrame> frames,
                           uint32_t stride);

} // namespace apollo::ref

#endif // APOLLO_REF_REFERENCE_GA_HH
