#include "ref/reference_control.hh"

#include <algorithm>

#include "util/logging.hh"

namespace apollo::ref {

ControlTranscript
droopControlTranscript(std::span<const float> est_power,
                       std::span<const uint8_t> valid,
                       const ControlParams &params)
{
    APOLLO_REQUIRE(est_power.size() == valid.size(),
                   "power/valid arity mismatch");
    const size_t n = est_power.size();
    ControlTranscript out;
    out.engaged.assign(n, 0);

    // Pass 1: the trigger cycles — deltas between consecutive *valid*
    // observations of estimated current.
    std::vector<size_t> trigger_cycles;
    bool have_prev = false;
    double prev = 0.0;
    for (size_t c = 0; c < n; ++c) {
        if (!valid[c])
            continue;
        const double current =
            static_cast<double>(est_power[c]) / params.vdd;
        if (have_prev && (current - prev) > params.triggerDelta)
            trigger_cycles.push_back(c);
        prev = current;
        have_prev = true;
    }
    out.triggers = trigger_cycles.size();

    // Pass 2: walk the triggers in order, stretching one window at a
    // time: a trigger that lands while the previous window is still
    // pending or in force (trigger cycle <= the window's last
    // constrained cycle) extends that window's release point instead
    // of opening a second one.
    size_t ti = 0;
    while (ti < trigger_cycles.size()) {
        const uint64_t start =
            trigger_cycles[ti] + 1 + params.triggerLatency;
        uint64_t end = start + params.engageCycles - 1;
        size_t tj = ti + 1;
        while (tj < trigger_cycles.size() && trigger_cycles[tj] <= end) {
            end = std::max(end, trigger_cycles[tj] + 1 +
                                    params.triggerLatency +
                                    params.engageCycles - 1);
            tj++;
        }
        // engaged[c] marks the decision for cycle c + 1, so the window
        // [start, end] over *constrained* cycles maps to decision
        // cycles [start - 1, end - 1].
        for (uint64_t c = start - 1; c <= end - 1 && c < n; ++c)
            out.engaged[c] = 1;
        ti = tj;
    }
    for (uint8_t e : out.engaged)
        out.engagedCycles += e;
    return out;
}

} // namespace apollo::ref
