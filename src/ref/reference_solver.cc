#include "ref/reference_solver.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace apollo::ref {

namespace {

/** S(z, t) = sign(z) * max(|z| - t, 0), transcribed from Eq. (5). */
double
refSoftThreshold(double z, double t)
{
    const double az = std::abs(z);
    if (az <= t)
        return 0.0;
    return z > 0.0 ? az - t : -(az - t);
}

/**
 * Closed-form minimizer of the coordinate subproblem
 *   (1/2) a w^2 - rho w + P(|w|)
 * transcribed independently from the equations documented in
 * ml/penalty.hh, including the local gamma floor that keeps the MCP
 * concave-region denominator positive for low-rate columns.
 */
double
refCoordinateUpdate(double rho, double a, const PenaltyConfig &cfg)
{
    double w = 0.0;
    switch (cfg.kind) {
      case PenaltyKind::None:
        w = rho / (a + 1e-12);
        break;
      case PenaltyKind::Ridge:
        w = rho / (a + cfg.lambda2);
        break;
      case PenaltyKind::Lasso:
        w = refSoftThreshold(rho, cfg.lambda) / (a + cfg.lambda2);
        break;
      case PenaltyKind::Mcp: {
        const double gamma = std::max(cfg.gamma, 1.5 / a);
        if (std::abs(rho) <= gamma * cfg.lambda * (a + cfg.lambda2))
            w = refSoftThreshold(rho, cfg.lambda) /
                (a + cfg.lambda2 - 1.0 / gamma);
        else
            w = rho / (a + cfg.lambda2);
        break;
      }
    }
    if (cfg.nonneg && w < 0.0)
        w = 0.0;
    return w;
}

/** <x_j, v> with per-element double accumulation through value(). */
double
refDot(const FeatureView &X, size_t col, const std::vector<double> &v)
{
    double acc = 0.0;
    for (size_t i = 0; i < X.rows(); ++i)
        acc += X.value(i, col) * v[i];
    return acc;
}

} // namespace

std::vector<uint32_t>
RefFitResult::support() const
{
    std::vector<uint32_t> s;
    for (size_t j = 0; j < w.size(); ++j)
        if (w[j] != 0.0)
            s.push_back(static_cast<uint32_t>(j));
    return s;
}

RefFitResult
fit(const FeatureView &X, std::span<const float> y,
    const CdConfig &config)
{
    const size_t n = X.rows();
    const size_t m = X.cols();
    APOLLO_REQUIRE(n == y.size(), "rows/labels mismatch");
    APOLLO_REQUIRE(n > 1, "need at least two samples");
    const auto nD = static_cast<double>(n);

    std::vector<double> a(m);
    for (size_t j = 0; j < m; ++j)
        a[j] = X.sumSquares(j) / nD;

    double mu = 0.0;
    for (float v : y)
        mu += v;
    mu /= nD;
    double var = 0.0;
    for (float v : y)
        var += (v - mu) * (v - mu);
    double y_std = std::sqrt(var / nD);
    if (y_std <= 0.0)
        y_std = 1.0;
    const double tol_abs = config.tol * y_std;

    RefFitResult res;
    res.w.assign(m, 0.0);
    std::vector<double> r(y.begin(), y.end());

    while (res.sweeps < config.maxSweeps) {
        if (config.fitIntercept) {
            double shift = 0.0;
            for (double v : r)
                shift += v;
            shift /= nD;
            res.intercept += shift;
            for (double &v : r)
                v -= shift;
        }
        double max_delta = 0.0;
        for (size_t j = 0; j < m; ++j) {
            if (a[j] <= 0.0)
                continue; // dead column: never enters the model
            const double w_old = res.w[j];
            const double rho = refDot(X, j, r) / nD + a[j] * w_old;
            const double w_new =
                refCoordinateUpdate(rho, a[j], config.penalty);
            if (w_new != w_old) {
                for (size_t i = 0; i < n; ++i)
                    r[i] += (w_old - w_new) * X.value(i, j);
                res.w[j] = w_new;
                max_delta = std::max(
                    max_delta, std::abs(w_new - w_old) * std::sqrt(a[j]));
            }
        }
        res.sweeps++;
        if (max_delta <= tol_abs) {
            res.converged = true;
            break;
        }
    }
    return res;
}

double
lambdaMax(const FeatureView &X, std::span<const float> y)
{
    const auto nD = static_cast<double>(X.rows());
    double mu = 0.0;
    for (float v : y)
        mu += v;
    mu /= nD;
    std::vector<double> centered(y.size());
    for (size_t i = 0; i < y.size(); ++i)
        centered[i] = y[i] - mu;
    double best = 0.0;
    for (size_t j = 0; j < X.cols(); ++j)
        best = std::max(best, std::abs(refDot(X, j, centered)) / nD);
    return best;
}

double
kktViolation(const FeatureView &X, std::span<const float> y,
             std::span<const float> w, double intercept,
             const PenaltyConfig &penalty)
{
    const size_t n = X.rows();
    const size_t m = X.cols();
    APOLLO_REQUIRE(w.size() == m, "weight arity mismatch");
    const auto nD = static_cast<double>(n);

    std::vector<double> r(n);
    for (size_t i = 0; i < n; ++i)
        r[i] = static_cast<double>(y[i]) - intercept;
    for (size_t j = 0; j < m; ++j)
        if (w[j] != 0.0f)
            for (size_t i = 0; i < n; ++i)
                r[i] -= static_cast<double>(w[j]) * X.value(i, j);

    double worst = 0.0;
    for (size_t j = 0; j < m; ++j) {
        const double a = X.sumSquares(j) / nD;
        if (a <= 0.0)
            continue;
        const double rho = refDot(X, j, r) / nD + a * w[j];
        const double w_opt = refCoordinateUpdate(rho, a, penalty);
        worst = std::max(worst, std::abs(w_opt - w[j]) * std::sqrt(a));
    }
    return worst;
}

double
objective(const FeatureView &X, std::span<const float> y,
          std::span<const float> w, double intercept,
          const PenaltyConfig &penalty)
{
    const size_t n = X.rows();
    const size_t m = X.cols();
    APOLLO_REQUIRE(w.size() == m, "weight arity mismatch");

    std::vector<double> r(n);
    for (size_t i = 0; i < n; ++i)
        r[i] = static_cast<double>(y[i]) - intercept;
    for (size_t j = 0; j < m; ++j)
        if (w[j] != 0.0f)
            for (size_t i = 0; i < n; ++i)
                r[i] -= static_cast<double>(w[j]) * X.value(i, j);

    double sse = 0.0;
    for (double v : r)
        sse += v * v;
    double obj = 0.5 * sse / static_cast<double>(n);

    // Penalty terms transcribed from Eq. (5) / Eq. (6).
    for (size_t j = 0; j < m; ++j) {
        const double aw = std::abs(static_cast<double>(w[j]));
        obj += 0.5 * penalty.lambda2 * aw * aw;
        switch (penalty.kind) {
          case PenaltyKind::None:
          case PenaltyKind::Ridge:
            break;
          case PenaltyKind::Lasso:
            obj += penalty.lambda * aw;
            break;
          case PenaltyKind::Mcp:
            if (aw <= penalty.gamma * penalty.lambda)
                obj += penalty.lambda * aw -
                       aw * aw / (2.0 * penalty.gamma);
            else
                obj += 0.5 * penalty.gamma * penalty.lambda *
                       penalty.lambda;
            break;
        }
    }
    return obj;
}

} // namespace apollo::ref
