/**
 * @file
 * Naive reference for the sharded screen pass (ShardedFeatureView /
 * docs/INTERNALS.md §13): per-bit double-precision transcriptions of
 * the per-column statistics the fused out-of-core pass harvests —
 * popcount, <x_j, y - float(mean(y))>, lambdaMax — plus the
 * first-path-point strong
 * rule admission test, all computed straight off FeatureView::value()
 * with no packed words, no kernels, no shards, no threads. The
 * production pass and this oracle share no arithmetic beyond the
 * admission formula itself, which is transcribed here from the strong
 * rule's definition rather than shared code.
 */

#ifndef APOLLO_REF_REFERENCE_SHARD_HH
#define APOLLO_REF_REFERENCE_SHARD_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ml/feature_view.hh"

namespace apollo::ref {

/** Per-column screen statistics, naively computed. */
struct RefScreenStats
{
    std::vector<uint64_t> popcount; ///< nonzero entries per column
    /** <x_j, y - float(mean(y))>, ascending per-bit (the centered
     *  cold residual the strong rule screens at). */
    std::vector<double> gradY;
    double lambdaMax = 0.0; ///< max_j |<x_j, yc>| / N (live)
};

/**
 * Compute the screen statistics of (X, y) one element at a time, in
 * ascending row order with double accumulation. Popcounts are integer
 * and must match the production pass exactly; the dots differ from
 * the vectorized kernels only by accumulation-order rounding, so the
 * differential comparison is |ref - prod| <= tol * ||x_j|| * ||y||
 * (the same bound the solver equivalence suite applies to the
 * kernels themselves). The bit-identity half of the contract —
 * sharded stats == BitFeatureView-kernel stats — is checked against
 * the production kernels directly, since both sides are defined to
 * run the identical kernel on the identical words.
 */
RefScreenStats screenStats(const FeatureView &X,
                           std::span<const float> y);

/**
 * First-path-point strong-rule admission (the out-of-core prefilter):
 * at the head of a geometric lambda path (lambda = factor *
 * lambdaMax, screened against lambdaRef = lambdaMax, zero warm
 * start), column j is swept iff
 *   |<x_j, y - float(mean(y))>| * slack >=
 *   (2 * factor - 1) * lambdaMax * N.
 * Returns one flag per column (dead columns are never admitted).
 */
std::vector<bool> admittedAtFirstPoint(const RefScreenStats &stats,
                                       size_t rows,
                                       double lambda_factor);

} // namespace apollo::ref

#endif // APOLLO_REF_REFERENCE_SHARD_HH
