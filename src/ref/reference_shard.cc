#include "ref/reference_shard.hh"

#include <cmath>

namespace apollo::ref {

RefScreenStats
screenStats(const FeatureView &X, std::span<const float> y)
{
    const size_t n = X.rows();
    const size_t m = X.cols();
    RefScreenStats stats;
    stats.popcount.assign(m, 0);
    stats.gradY.assign(m, 0.0);

    // Label mean in ascending row order (the solver's own recipe,
    // transcribed).
    double mu = 0.0;
    for (size_t i = 0; i < n; ++i)
        mu += y[i];
    mu /= static_cast<double>(n);
    const auto muf = static_cast<float>(mu);

    double best = 0.0;
    for (size_t j = 0; j < m; ++j) {
        uint64_t pop = 0;
        // Centered per the two solver recipes: dot_cold against
        // y - float(mu) (the residual after a cold fit's first
        // intercept update, float subtraction — what the strong rule
        // screens), dot_path against float(y - mu) (the constructor's
        // yCentered_, what lambdaMax maximizes over).
        double dot_cold = 0.0;
        double dot_path = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double x = X.value(i, j);
            if (x == 0.0)
                continue;
            pop++;
            dot_cold += x * static_cast<double>(y[i] - muf);
            dot_path += x * static_cast<double>(
                                static_cast<float>(y[i] - mu));
        }
        stats.popcount[j] = pop;
        if (pop == 0)
            continue;
        stats.gradY[j] = dot_cold;
        best = std::max(best,
                        std::abs(dot_path) / static_cast<double>(n));
    }
    stats.lambdaMax = best;
    return stats;
}

std::vector<bool>
admittedAtFirstPoint(const RefScreenStats &stats, size_t rows,
                     double lambda_factor)
{
    // Strong rule at the path head, transcribed from its definition:
    // sweep j iff |<x_j, y - float(mean(y))>| >=
    // (2*lambda1 - lambdaMax) * N with lambda1 = factor * lambdaMax
    // (the gradient is taken at the centered cold residual, i.e. the
    // intercept-only model the path starts from). The production screen applies a
    // (1 + 1e-8) admission slack so rounding can only widen the
    // strong set; the reference admits on the same side.
    const double slack = 1.0 + 1e-8;
    const double thresh = (2.0 * lambda_factor - 1.0) * stats.lambdaMax *
                          static_cast<double>(rows);
    std::vector<bool> admitted(stats.popcount.size(), false);
    for (size_t j = 0; j < stats.popcount.size(); ++j)
        admitted[j] = stats.popcount[j] > 0 &&
                      (thresh <= 0.0 ||
                       std::abs(stats.gradY[j]) * slack >= thresh);
    return admitted;
}

} // namespace apollo::ref
