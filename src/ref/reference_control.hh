/**
 * @file
 * Naive reference for the droop controller's trigger/engage state
 * machine (docs/INTERNALS.md §14): a literal cycle-by-cycle
 * transcription of the documented contract — estimated current is
 * power / vdd, a trigger fires when the delta between consecutive
 * observations exceeds triggerDelta, a trigger at cycle c schedules
 * throttling for cycles [c + 1 + latency, c + latency + engageCycles],
 * and retriggers extend the single pending window's release point.
 * No Throttle object, no state enum — just the per-cycle booleans,
 * recomputed the slow way. Oracle for control::DroopController
 * (the control.droop_trigger differential path).
 */

#ifndef APOLLO_REF_REFERENCE_CONTROL_HH
#define APOLLO_REF_REFERENCE_CONTROL_HH

#include <cstdint>
#include <span>
#include <vector>

namespace apollo::ref {

/** Reference controller parameters (mirrors DroopControllerConfig). */
struct ControlParams
{
    double vdd = 0.75;
    double triggerDelta = 0.0;
    uint32_t triggerLatency = 2;
    uint32_t engageCycles = 6;
};

/** Reference run outcome over n cycles. */
struct ControlTranscript
{
    /** engaged[c] = the throttle constrains cycle c + 1 (the decision
     *  the controller makes at the end of cycle c). */
    std::vector<uint8_t> engaged;
    uint64_t triggers = 0;
    uint64_t engagedCycles = 0;
};

/**
 * Run the reference state machine over a per-cycle OPM power stream:
 * @p est_power[c] is the sample observed at cycle c, @p valid[c] says
 * whether the OPM emitted an output that cycle (windowed OPMs emit
 * every T cycles). Both spans have equal length n.
 */
ControlTranscript droopControlTranscript(std::span<const float> est_power,
                                         std::span<const uint8_t> valid,
                                         const ControlParams &params);

} // namespace apollo::ref

#endif // APOLLO_REF_REFERENCE_CONTROL_HH
