#include "ml/neural_net.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

/** Extract per-sample active input index lists for the given columns. */
std::vector<std::vector<uint32_t>>
extractActiveSets(const BitColumnMatrix &X,
                  std::span<const uint32_t> input_ids)
{
    std::vector<std::vector<uint32_t>> active(X.rows());
    for (uint32_t f = 0; f < input_ids.size(); ++f) {
        X.forEachSetBit(input_ids[f], [&](size_t row) {
            active[row].push_back(f);
        });
    }
    return active;
}

/** Adam state for one parameter tensor. */
struct AdamState
{
    std::vector<float> m;
    std::vector<float> v;

    explicit AdamState(size_t n) : m(n, 0.f), v(n, 0.f) {}

    void
    apply(std::vector<float> &param, const std::vector<float> &grad,
          float lr, float l2, uint64_t step)
    {
        constexpr float beta1 = 0.9f;
        constexpr float beta2 = 0.999f;
        constexpr float eps = 1e-8f;
        const float bc1 =
            1.f - std::pow(beta1, static_cast<float>(step));
        const float bc2 =
            1.f - std::pow(beta2, static_cast<float>(step));
        for (size_t i = 0; i < param.size(); ++i) {
            const float g = grad[i] + l2 * param[i];
            m[i] = beta1 * m[i] + (1.f - beta1) * g;
            v[i] = beta2 * v[i] + (1.f - beta2) * g * g;
            param[i] -=
                lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
        }
    }
};

/** Flat gradient buffers for one chunk. */
struct GradBuffers
{
    std::vector<float> w1, b1, w2, b2, w3;
    float b3 = 0.f;

    GradBuffers(size_t n1, size_t nb1, size_t n2, size_t nb2, size_t n3)
        : w1(n1, 0.f), b1(nb1, 0.f), w2(n2, 0.f), b2(nb2, 0.f),
          w3(n3, 0.f)
    {}

    void
    clear()
    {
        std::fill(w1.begin(), w1.end(), 0.f);
        std::fill(b1.begin(), b1.end(), 0.f);
        std::fill(w2.begin(), w2.end(), 0.f);
        std::fill(b2.begin(), b2.end(), 0.f);
        std::fill(w3.begin(), w3.end(), 0.f);
        b3 = 0.f;
    }
};

} // namespace

float
PowerNet::forward(const std::vector<uint32_t> &active, float *h1,
                  float *h2) const
{
    for (uint32_t u = 0; u < h1_; ++u)
        h1[u] = b1_[u];
    for (uint32_t f : active) {
        const float *row = &w1_[static_cast<size_t>(f) * h1_];
        for (uint32_t u = 0; u < h1_; ++u)
            h1[u] += row[u];
    }
    for (uint32_t u = 0; u < h1_; ++u)
        h1[u] = std::max(0.f, h1[u]);

    for (uint32_t u = 0; u < h2_; ++u)
        h2[u] = b2_[u];
    for (uint32_t u = 0; u < h1_; ++u) {
        if (h1[u] == 0.f)
            continue;
        const float *row = &w2_[static_cast<size_t>(u) * h2_];
        for (uint32_t t = 0; t < h2_; ++t)
            h2[t] += h1[u] * row[t];
    }
    float out = b3_;
    for (uint32_t t = 0; t < h2_; ++t) {
        h2[t] = std::max(0.f, h2[t]);
        out += w3_[t] * h2[t];
    }
    return out;
}

void
PowerNet::train(const BitColumnMatrix &X,
                std::span<const uint32_t> input_ids,
                std::span<const float> y, const NeuralNetConfig &config)
{
    APOLLO_REQUIRE(!input_ids.empty(), "no input signals");
    APOLLO_REQUIRE(X.rows() == y.size(), "rows/labels mismatch");
    const size_t n = X.rows();
    const size_t f = input_ids.size();
    inputIds_.assign(input_ids.begin(), input_ids.end());
    h1_ = config.hidden1;
    h2_ = config.hidden2;

    // Label standardization.
    double mu = 0.0;
    for (float v : y)
        mu += v;
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (float v : y)
        var += (v - mu) * (v - mu);
    yMean_ = static_cast<float>(mu);
    yStd_ = static_cast<float>(
        std::sqrt(std::max(1e-12, var / static_cast<double>(n))));

    // He-style init.
    Xoshiro256StarStar rng(config.seed);
    auto init = [&](std::vector<float> &w, size_t count, size_t fan_in) {
        w.resize(count);
        const float scale =
            std::sqrt(2.f / static_cast<float>(fan_in));
        for (float &x : w)
            x = scale * static_cast<float>(rng.nextGaussian());
    };
    // First-layer fan-in is the typical active count, not F.
    init(w1_, f * h1_, 256);
    b1_.assign(h1_, 0.f);
    init(w2_, static_cast<size_t>(h1_) * h2_, h1_);
    b2_.assign(h2_, 0.f);
    init(w3_, h2_, h2_);
    b3_ = 0.f;

    const std::vector<std::vector<uint32_t>> active =
        extractActiveSets(X, input_ids);

    // Shuffled sample order, re-shuffled per epoch.
    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = static_cast<uint32_t>(i);

    AdamState s_w1(w1_.size()), s_b1(b1_.size()), s_w2(w2_.size()),
        s_b2(b2_.size()), s_w3(w3_.size()), s_b3(1);
    std::vector<float> g_b3_vec(1, 0.f);
    std::vector<float> p_b3_vec(1, b3_);

    const size_t batch = config.batchSize;
    const size_t n_chunks =
        std::max<size_t>(1, ThreadPool::global().threadCount());
    std::vector<GradBuffers> chunk_grads;
    chunk_grads.reserve(n_chunks);
    for (size_t c = 0; c < n_chunks; ++c)
        chunk_grads.emplace_back(w1_.size(), b1_.size(), w2_.size(),
                                 b2_.size(), w3_.size());

    GradBuffers total(w1_.size(), b1_.size(), w2_.size(), b2_.size(),
                      w3_.size());

    uint64_t step = 0;
    for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
        // Fisher-Yates shuffle.
        for (size_t i = n; i > 1; --i)
            std::swap(order[i - 1], order[rng.nextBounded(i)]);

        for (size_t b0 = 0; b0 < n; b0 += batch) {
            const size_t b1_end = std::min(n, b0 + batch);
            const size_t bsz = b1_end - b0;
            const size_t per_chunk = (bsz + n_chunks - 1) / n_chunks;

            // Deterministic parallel chunks.
            parallelFor(n_chunks, [&](size_t c0, size_t c1) {
                for (size_t c = c0; c < c1; ++c) {
                    GradBuffers &g = chunk_grads[c];
                    g.clear();
                    const size_t s_begin = b0 + c * per_chunk;
                    const size_t s_end =
                        std::min(b1_end, s_begin + per_chunk);
                    std::vector<float> h1(h1_), h2(h2_), dh1(h1_),
                        dh2(h2_);
                    for (size_t s = s_begin; s < s_end; ++s) {
                        const uint32_t row = order[s];
                        const float target =
                            (y[row] - yMean_) / yStd_;
                        const float pred =
                            forward(active[row], h1.data(), h2.data());
                        const float dout = 2.f * (pred - target) /
                            static_cast<float>(bsz);

                        g.b3 += dout;
                        for (uint32_t t = 0; t < h2_; ++t) {
                            g.w3[t] += dout * h2[t];
                            dh2[t] = h2[t] > 0.f ? dout * w3_[t] : 0.f;
                            g.b2[t] += dh2[t];
                        }
                        for (uint32_t u = 0; u < h1_; ++u) {
                            float acc = 0.f;
                            const float *row2 =
                                &w2_[static_cast<size_t>(u) * h2_];
                            float *grow2 =
                                &g.w2[static_cast<size_t>(u) * h2_];
                            for (uint32_t t = 0; t < h2_; ++t) {
                                grow2[t] += dh2[t] * h1[u];
                                acc += dh2[t] * row2[t];
                            }
                            dh1[u] = h1[u] > 0.f ? acc : 0.f;
                            g.b1[u] += dh1[u];
                        }
                        for (uint32_t ff : active[row]) {
                            float *grow =
                                &g.w1[static_cast<size_t>(ff) * h1_];
                            for (uint32_t u = 0; u < h1_; ++u)
                                grow[u] += dh1[u];
                        }
                    }
                }
            });

            // Ordered reduction keeps training bit-deterministic.
            total.clear();
            for (const GradBuffers &g : chunk_grads) {
                for (size_t i = 0; i < total.w1.size(); ++i)
                    total.w1[i] += g.w1[i];
                for (size_t i = 0; i < total.b1.size(); ++i)
                    total.b1[i] += g.b1[i];
                for (size_t i = 0; i < total.w2.size(); ++i)
                    total.w2[i] += g.w2[i];
                for (size_t i = 0; i < total.b2.size(); ++i)
                    total.b2[i] += g.b2[i];
                for (size_t i = 0; i < total.w3.size(); ++i)
                    total.w3[i] += g.w3[i];
                total.b3 += g.b3;
            }

            step++;
            s_w1.apply(w1_, total.w1, config.learningRate, config.l2,
                       step);
            s_b1.apply(b1_, total.b1, config.learningRate, 0.f, step);
            s_w2.apply(w2_, total.w2, config.learningRate, config.l2,
                       step);
            s_b2.apply(b2_, total.b2, config.learningRate, 0.f, step);
            s_w3.apply(w3_, total.w3, config.learningRate, config.l2,
                       step);
            g_b3_vec[0] = total.b3;
            p_b3_vec[0] = b3_;
            s_b3.apply(p_b3_vec, g_b3_vec, config.learningRate, 0.f,
                       step);
            b3_ = p_b3_vec[0];
        }
    }
}

std::vector<float>
PowerNet::predict(const BitColumnMatrix &X) const
{
    APOLLO_REQUIRE(!inputIds_.empty(), "train() first");
    const std::vector<std::vector<uint32_t>> active =
        extractActiveSets(X, inputIds_);
    std::vector<float> out(X.rows());
    parallelFor(X.rows(), [&](size_t i0, size_t i1) {
        std::vector<float> h1(h1_), h2(h2_);
        for (size_t i = i0; i < i1; ++i) {
            const float pred = forward(active[i], h1.data(), h2.data());
            out[i] = pred * yStd_ + yMean_;
        }
    });
    return out;
}

double
PowerNet::macsPerCycle() const
{
    // First layer effectively touches all F inputs' weights at worst
    // case; report the dense equivalent like PRIMAL's CNN cost model.
    return static_cast<double>(inputIds_.size()) * h1_ +
           static_cast<double>(h1_) * h2_ + h2_;
}

} // namespace apollo
