/**
 * @file
 * Sparsity-inducing penalties and their coordinate-descent updates.
 *
 * The coordinate subproblem solved per feature j is
 *   minimize over w:  (1/2) a w^2 - rho w + P(|w|)
 * where a = <x_j, x_j>/N and rho = <x_j, r>/N + a w_old (r is the
 * current residual). Closed-form minimizers:
 *
 *   Ridge  (Eq. ridge):  w = rho / (a + lambda2)
 *   Lasso  (Eq. 5):      w = S(rho, lambda) / (a + lambda2)
 *   MCP    (Eq. 6):      w = S(rho, lambda) / (a - 1/gamma)
 *                                          if |rho| <= gamma*lambda*a
 *                        w = rho / a       otherwise
 *
 * where S is the soft-threshold operator. The MCP branch condition and
 * denominators generalize the standardized-feature updates of
 * Breheny & Huang to unstandardized columns; weights with
 * |w| > gamma*lambda are left unpenalized — exactly the property (Eq. 7)
 * that lets APOLLO keep large proxy weights accurate while pruning.
 *
 * ElasticNet (Simmani's model) is Lasso with lambda2 > 0.
 */

#ifndef APOLLO_ML_PENALTY_HH
#define APOLLO_ML_PENALTY_HH

#include <algorithm>
#include <cmath>

namespace apollo {

/** Supported penalty families. */
enum class PenaltyKind
{
    None,       ///< ordinary least squares
    Ridge,      ///< L2 only
    Lasso,      ///< L1 (+ optional L2 = elastic net)
    Mcp,        ///< minimax concave penalty (+ optional tiny L2)
};

/** Penalty configuration. */
struct PenaltyConfig
{
    PenaltyKind kind = PenaltyKind::Lasso;
    double lambda = 0.0;  ///< L1 / MCP strength
    double gamma = 10.0;  ///< MCP concavity threshold (paper uses 10)
    double lambda2 = 0.0; ///< L2 strength
    /** Clamp weights at zero (paper's model has w in R+). */
    bool nonneg = false;
};

/** Soft-threshold operator S(z, t) = sign(z) * max(|z| - t, 0). */
inline double
softThreshold(double z, double t)
{
    if (z > t)
        return z - t;
    if (z < -t)
        return z + t;
    return 0.0;
}

/** Penalty value P(w) for loss reporting and tests (Eq. 5 / Eq. 6). */
double penaltyValue(double w, const PenaltyConfig &cfg);

/** |dP/dw| — the weight shrinking rate (Eq. 7). */
double penaltyDerivativeMagnitude(double w, const PenaltyConfig &cfg);

/**
 * Closed-form minimizer of the coordinate subproblem (see file docs).
 * @param rho  <x_j, r>/N + a * w_old
 * @param a    <x_j, x_j>/N (must be > 0)
 */
double coordinateUpdate(double rho, double a, const PenaltyConfig &cfg);

} // namespace apollo

#endif // APOLLO_ML_PENALTY_HH
