#include "ml/feature_view.hh"

#include "util/thread_pool.hh"

namespace apollo {

CountFeatureView::CountFeatureView(const CountColumnMatrix &matrix,
                                   float scale)
    : matrix_(matrix), scale_(scale), colSum_(matrix.cols(), 0),
      colSumSq_(matrix.cols(), 0)
{
    const size_t n = matrix_.rows();
    auto body = [&](size_t begin, size_t end) {
        for (size_t col = begin; col < end; ++col) {
            const uint8_t *c = matrix_.colData(col);
            uint64_t s = 0;
            uint64_t sq = 0;
            for (size_t i = 0; i < n; ++i) {
                const uint64_t v = c[i];
                s += v;
                sq += v * v;
            }
            colSum_[col] = s;
            colSumSq_[col] = sq;
        }
    };
    // One column pass, fanned over the pool for big matrices; outputs
    // are per-column so the result is chunking-independent.
    if (n * matrix_.cols() >= (1u << 20))
        parallelFor(matrix_.cols(), body);
    else
        body(0, matrix_.cols());
}

} // namespace apollo
