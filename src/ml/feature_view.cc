#include "ml/feature_view.hh"

#include <algorithm>

#include "util/thread_pool.hh"

namespace apollo {

namespace {

/** Row strip per moment-accumulation step: bounds the address range a
 *  single inner loop touches so the pass composes with shard-local
 *  column storage that is only mapped (or resident) a strip at a
 *  time. Integer accumulation is associative, so any blocking yields
 *  the identical sums. */
constexpr size_t kMomentRowBlock = size_t{1} << 14;

/** Columns per outer block: the construction pass walks the matrix in
 *  bounded column windows rather than assuming all of it is
 *  addressable at once. */
constexpr size_t kMomentColBlock = 4096;

/** Accumulate sum / sum-of-squares of c[begin, end) into (s, sq). */
void
accumulateCountMoments(const uint8_t *c, size_t begin, size_t end,
                       uint64_t &s, uint64_t &sq)
{
    for (size_t i = begin; i < end; ++i) {
        const uint64_t v = c[i];
        s += v;
        sq += v * v;
    }
}

} // namespace

CountFeatureView::CountFeatureView(const CountColumnMatrix &matrix,
                                   float scale)
    : matrix_(matrix), scale_(scale), colSum_(matrix.cols(), 0),
      colSumSq_(matrix.cols(), 0)
{
    const size_t n = matrix_.rows();
    const size_t m = matrix_.cols();
    const bool parallel = n * m >= (1u << 20);
    for (size_t col0 = 0; col0 < m; col0 += kMomentColBlock) {
        const size_t run = std::min(kMomentColBlock, m - col0);
        auto body = [&](size_t begin, size_t end) {
            for (size_t k = begin; k < end; ++k) {
                const size_t col = col0 + k;
                const uint8_t *c = matrix_.colData(col);
                uint64_t s = 0;
                uint64_t sq = 0;
                for (size_t r0 = 0; r0 < n; r0 += kMomentRowBlock)
                    accumulateCountMoments(
                        c, r0, std::min(n, r0 + kMomentRowBlock), s, sq);
                colSum_[col] = s;
                colSumSq_[col] = sq;
            }
        };
        // Fanned over the pool per block; outputs are per-column so
        // the result is chunking- and thread-count-independent.
        if (parallel)
            parallelFor(run, body);
        else
            body(0, run);
    }
}

} // namespace apollo
