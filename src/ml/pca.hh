/**
 * @file
 * Randomized PCA over toggle matrices, for the PRIMAL-PCA baseline
 * [79]: project all M signals onto k principal directions, then fit a
 * linear model on the components. Like the paper notes, this is *not*
 * proxy selection — inference still needs every signal's toggle bit,
 * which is why the PCA baseline is a horizontal line in Fig. 10 and is
 * computationally infeasible as an OPM.
 *
 * Method: randomized range finder (Halko et al.) with one power
 * iteration: Y = X G, orthonormalize, Y = X (X^T Y), orthonormalize;
 * components V = X^T Q column-orthonormalized. Features z = V^T x.
 */

#ifndef APOLLO_ML_PCA_HH
#define APOLLO_ML_PCA_HH

#include <cstdint>
#include <vector>

#include "util/bitvec.hh"

namespace apollo {

/** Fitted PCA projection. */
struct PcaModel
{
    size_t inputDims = 0;  ///< M
    size_t components = 0; ///< k
    /** Column means (centering vector), length M. */
    std::vector<float> meanVec;
    /** Projection matrix V, row-major M x k. */
    std::vector<float> v;

    /**
     * Project one toggle row (given by its set-bit column ids) into
     * component space: z = V^T (x - mean).
     */
    void projectRow(const std::vector<uint32_t> &set_cols,
                    float *z_out) const;

    /** Project every row of @p X; returns row-major rows x k. */
    std::vector<float> projectAll(const BitColumnMatrix &X) const;

    /** Precomputed V^T mean (set by fitPca). */
    std::vector<float> meanDotV_;
};

/** Fit randomized PCA with @p k components on the columns of X. */
PcaModel fitPca(const BitColumnMatrix &X, size_t k,
                uint64_t seed = 0x9caULL);

} // namespace apollo

#endif // APOLLO_ML_PCA_HH
