#include "ml/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

double
sqDist(const float *a, const float *b, size_t d)
{
    double acc = 0.0;
    for (size_t i = 0; i < d; ++i) {
        const double diff = static_cast<double>(a[i]) - b[i];
        acc += diff * diff;
    }
    return acc;
}

} // namespace

KmeansResult
kmeansSignals(const BitColumnMatrix &X, const KmeansConfig &config)
{
    const size_t m = X.cols();
    const size_t n = X.rows();
    const size_t d = config.sketchDims;
    const size_t k = std::min<size_t>(config.k, m);
    APOLLO_REQUIRE(k >= 1, "k must be positive");

    // Random projection matrix R (n x d), Rademacher +-1 entries scaled.
    Xoshiro256StarStar rng(config.seed);
    std::vector<float> proj_rows(n * d);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    for (float &v : proj_rows)
        v = (rng.nextDouble() < 0.5 ? -scale : scale);

    // Sketch each column: s_j = sum over set rows of R[row], then
    // normalize to unit length (cluster by shape, not rate).
    std::vector<float> sketch(m * d, 0.0f);
    std::vector<uint8_t> empty_col(m, 0);
    parallelFor(m, [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
            float *s = &sketch[c * d];
            X.forEachSetBit(c, [&](size_t row) {
                const float *r = &proj_rows[row * d];
                for (size_t t = 0; t < d; ++t)
                    s[t] += r[t];
            });
            double norm = 0.0;
            for (size_t t = 0; t < d; ++t)
                norm += static_cast<double>(s[t]) * s[t];
            if (norm <= 0.0) {
                empty_col[c] = 1;
                continue;
            }
            const auto inv =
                static_cast<float>(1.0 / std::sqrt(norm));
            for (size_t t = 0; t < d; ++t)
                s[t] *= inv;
        }
    });

    // k-means++ seeding over non-empty columns.
    std::vector<uint32_t> candidates;
    candidates.reserve(m);
    for (size_t c = 0; c < m; ++c)
        if (!empty_col[c])
            candidates.push_back(static_cast<uint32_t>(c));
    APOLLO_REQUIRE(candidates.size() >= k,
                   "fewer non-empty columns than clusters");

    std::vector<float> centroids(k * d);
    std::vector<double> min_dist(m,
                                 std::numeric_limits<double>::infinity());
    {
        const uint32_t first =
            candidates[rng.nextBounded(candidates.size())];
        std::copy_n(&sketch[first * d], d, centroids.begin());
        for (size_t cl = 1; cl < k; ++cl) {
            double total = 0.0;
            for (uint32_t c : candidates) {
                const double dist =
                    sqDist(&sketch[c * d],
                           &centroids[(cl - 1) * d], d);
                min_dist[c] = std::min(min_dist[c], dist);
                total += min_dist[c];
            }
            double draw = rng.nextDouble() * total;
            uint32_t chosen = candidates.back();
            for (uint32_t c : candidates) {
                draw -= min_dist[c];
                if (draw <= 0.0) {
                    chosen = c;
                    break;
                }
            }
            std::copy_n(&sketch[chosen * d], d,
                        centroids.begin() + static_cast<long>(cl * d));
        }
    }

    // Lloyd iterations.
    KmeansResult res;
    res.assignment.assign(m, static_cast<uint32_t>(k));
    std::vector<double> dist_to_centroid(m, 0.0);

    for (uint32_t iter = 0; iter < config.iterations; ++iter) {
        // Assign.
        parallelFor(m, [&](size_t c0, size_t c1) {
            for (size_t c = c0; c < c1; ++c) {
                if (empty_col[c])
                    continue;
                double best = std::numeric_limits<double>::infinity();
                uint32_t best_cl = 0;
                for (size_t cl = 0; cl < k; ++cl) {
                    const double dist =
                        sqDist(&sketch[c * d], &centroids[cl * d], d);
                    if (dist < best) {
                        best = dist;
                        best_cl = static_cast<uint32_t>(cl);
                    }
                }
                res.assignment[c] = best_cl;
                dist_to_centroid[c] = best;
            }
        });

        // Update.
        std::vector<double> sums(k * d, 0.0);
        std::vector<size_t> counts(k, 0);
        for (size_t c = 0; c < m; ++c) {
            if (empty_col[c])
                continue;
            const uint32_t cl = res.assignment[c];
            counts[cl]++;
            for (size_t t = 0; t < d; ++t)
                sums[cl * d + t] += sketch[c * d + t];
        }
        for (size_t cl = 0; cl < k; ++cl) {
            if (counts[cl] == 0) {
                // Reseed an empty cluster at the farthest point.
                uint32_t farthest = candidates[0];
                for (uint32_t c : candidates)
                    if (dist_to_centroid[c] >
                        dist_to_centroid[farthest])
                        farthest = c;
                std::copy_n(&sketch[farthest * d], d,
                            centroids.begin() +
                                static_cast<long>(cl * d));
                dist_to_centroid[farthest] = 0.0;
                continue;
            }
            for (size_t t = 0; t < d; ++t)
                centroids[cl * d + t] = static_cast<float>(
                    sums[cl * d + t] / static_cast<double>(counts[cl]));
        }
    }

    // Representatives: the column closest to each centroid.
    res.representatives.assign(k, 0);
    std::vector<double> best(k, std::numeric_limits<double>::infinity());
    res.inertia = 0.0;
    size_t assigned = 0;
    for (size_t c = 0; c < m; ++c) {
        if (empty_col[c])
            continue;
        const uint32_t cl = res.assignment[c];
        const double dist = sqDist(&sketch[c * d], &centroids[cl * d], d);
        res.inertia += dist;
        assigned++;
        if (dist < best[cl]) {
            best[cl] = dist;
            res.representatives[cl] = static_cast<uint32_t>(c);
        }
    }
    if (assigned)
        res.inertia /= static_cast<double>(assigned);

    // Clusters that stayed empty through the last assignment round get
    // distinct fallback representatives.
    for (size_t cl = 0; cl < k; ++cl) {
        if (best[cl] == std::numeric_limits<double>::infinity())
            res.representatives[cl] =
                candidates[cl % candidates.size()];
    }
    return res;
}

} // namespace apollo
