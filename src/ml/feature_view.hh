/**
 * @file
 * FeatureView: a column-access abstraction over feature matrices so the
 * coordinate-descent solvers run unchanged on
 *  - per-cycle binary toggles (BitFeatureView over a BitColumnMatrix),
 *  - tau-cycle averaged toggles (CountFeatureView over a
 *    CountColumnMatrix, scaled by 1/tau to match the paper's
 *    x_tau in R features).
 *
 * Solvers only ever need per-column dot products against a dense
 * residual, per-column axpy updates of that residual, and column norms —
 * all O(nnz) on the packed representations.
 */

#ifndef APOLLO_ML_FEATURE_VIEW_HH
#define APOLLO_ML_FEATURE_VIEW_HH

#include <cstddef>
#include <span>

#include "util/bitvec.hh"

namespace apollo {

/** Column-access interface used by the solvers. */
class FeatureView
{
  public:
    virtual ~FeatureView() = default;

    virtual size_t rows() const = 0;
    virtual size_t cols() const = 0;

    /** <x_j, v> for dense v of length rows(). */
    virtual double dot(size_t col, const float *v) const = 0;

    /** v += delta * x_j. */
    virtual void axpy(size_t col, float delta, float *v) const = 0;

    /** <x_j, x_j>. */
    virtual double sumSquares(size_t col) const = 0;

    /** sum_i x_j[i]. */
    virtual double sum(size_t col) const = 0;

    /** Single element (slow path; used by tests and small models). */
    virtual double value(size_t row, size_t col) const = 0;

    /**
     * Batched dot products: out[k] = <x_cols[k], v>. Used by the
     * screening/KKT gradient passes so implementations can amortize
     * loads of @p v across columns. out[k] must depend only on column
     * cols[k] (callers chunk the column list across threads).
     */
    virtual void
    dotColumns(std::span<const uint32_t> cols, const float *v,
               double *out) const
    {
        for (size_t k = 0; k < cols.size(); ++k)
            out[k] = dot(cols[k], v);
    }

    /**
     * Like dotColumns but each result may be off by up to
     * bitkernels::kDotFastRelErr * ||x_col|| * ||v||. Views with a
     * faster approximate kernel override this; the default is exact
     * (which trivially satisfies the bound). Callers making exact
     * decisions must recompute borderline results with dotColumns.
     */
    virtual void
    dotColumnsFast(std::span<const uint32_t> cols, const float *v,
                   double *out) const
    {
        dotColumns(cols, v, out);
    }

    /**
     * Hint that the caller is done with these columns for now. Resident
     * views ignore it; out-of-core views may drop the backing pages so
     * a batched gradient pass over cold columns never accumulates the
     * whole payload in RAM. Purely a residency hint — a released column
     * remains readable (it refaults from the file).
     */
    virtual void releaseColumns(std::span<const uint32_t> cols) const
    {
        (void)cols;
    }

    /**
     * Dense prediction: out[i] = intercept + sum_j w[j] * x[i][j].
     * @p w has cols() entries (zeros skipped).
     */
    void
    predict(std::span<const float> w, double intercept, float *out) const
    {
        const size_t n = rows();
        for (size_t i = 0; i < n; ++i)
            out[i] = static_cast<float>(intercept);
        for (size_t j = 0; j < cols(); ++j)
            if (w[j] != 0.0f)
                axpy(j, w[j], out);
    }
};

/**
 * View over per-cycle binary toggle features. `final` so the solver's
 * templated inner loop devirtualizes the kernel calls.
 */
class BitFeatureView final : public FeatureView
{
  public:
    explicit BitFeatureView(const BitColumnMatrix &matrix)
        : matrix_(matrix)
    {}

    size_t rows() const override { return matrix_.rows(); }
    size_t cols() const override { return matrix_.cols(); }

    double
    dot(size_t col, const float *v) const override
    {
        return matrix_.dotColumn(col, v);
    }

    void
    axpy(size_t col, float delta, float *v) const override
    {
        matrix_.axpyColumn(col, delta, v);
    }

    void
    dotColumns(std::span<const uint32_t> cols, const float *v,
               double *out) const override
    {
        matrix_.dotColumns(cols, v, out);
    }

    void
    dotColumnsFast(std::span<const uint32_t> cols, const float *v,
                   double *out) const override
    {
        matrix_.dotColumnsFast(cols, v, out);
    }

    double
    sumSquares(size_t col) const override
    {
        // Binary column: sum of squares == popcount.
        return static_cast<double>(matrix_.colPopcount(col));
    }

    double
    sum(size_t col) const override
    {
        return static_cast<double>(matrix_.colPopcount(col));
    }

    double
    value(size_t row, size_t col) const override
    {
        return matrix_.get(row, col) ? 1.0 : 0.0;
    }

    const BitColumnMatrix &matrix() const { return matrix_; }

  private:
    const BitColumnMatrix &matrix_;
};

/** View over tau-cycle toggle counts, scaled to average toggle rates. */
class CountFeatureView final : public FeatureView
{
  public:
    /**
     * @param scale typically 1/tau so features lie in [0, 1].
     * Construction makes one (parallel) pass over the matrix to cache
     * per-column integer sums and sums of squares — solver setup calls
     * sum()/sumSquares() once per column, which used to cost an O(n)
     * scan each.
     */
    CountFeatureView(const CountColumnMatrix &matrix, float scale);

    size_t rows() const override { return matrix_.rows(); }
    size_t cols() const override { return matrix_.cols(); }

    double
    dot(size_t col, const float *v) const override
    {
        return scale_ * matrix_.dotColumn(col, v);
    }

    void
    axpy(size_t col, float delta, float *v) const override
    {
        matrix_.axpyColumn(col, delta * scale_, v);
    }

    double
    sumSquares(size_t col) const override
    {
        // Integer sums are exact, so this matches a fresh scan bit for
        // bit.
        return static_cast<double>(scale_) * scale_ *
               static_cast<double>(colSumSq_[col]);
    }

    double
    sum(size_t col) const override
    {
        return scale_ * static_cast<double>(colSum_[col]);
    }

    double
    value(size_t row, size_t col) const override
    {
        return scale_ * matrix_.get(row, col);
    }

    float scale() const { return scale_; }

  private:
    const CountColumnMatrix &matrix_;
    float scale_;
    std::vector<uint64_t> colSum_;
    std::vector<uint64_t> colSumSq_;
};

/** Column-major dense float matrix (small feature sets: PCA components,
 *  Simmani polynomial terms over window-averaged toggles). */
class DenseColumnMatrix
{
  public:
    DenseColumnMatrix() = default;
    DenseColumnMatrix(size_t n_rows, size_t n_cols)
        : rows_(n_rows), cols_(n_cols), data_(n_rows * n_cols, 0.f)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    float get(size_t row, size_t col) const
    {
        return data_[col * rows_ + row];
    }
    void set(size_t row, size_t col, float v)
    {
        data_[col * rows_ + row] = v;
    }
    float *colData(size_t col) { return data_.data() + col * rows_; }
    const float *colData(size_t col) const
    {
        return data_.data() + col * rows_;
    }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

/** View over a DenseColumnMatrix. */
class DenseFeatureView final : public FeatureView
{
  public:
    explicit DenseFeatureView(const DenseColumnMatrix &matrix)
        : matrix_(matrix)
    {}

    size_t rows() const override { return matrix_.rows(); }
    size_t cols() const override { return matrix_.cols(); }

    double
    dot(size_t col, const float *v) const override
    {
        const float *c = matrix_.colData(col);
        double acc = 0.0;
        for (size_t i = 0; i < matrix_.rows(); ++i)
            acc += static_cast<double>(c[i]) * v[i];
        return acc;
    }

    void
    axpy(size_t col, float delta, float *v) const override
    {
        const float *c = matrix_.colData(col);
        for (size_t i = 0; i < matrix_.rows(); ++i)
            v[i] += delta * c[i];
    }

    double
    sumSquares(size_t col) const override
    {
        const float *c = matrix_.colData(col);
        double acc = 0.0;
        for (size_t i = 0; i < matrix_.rows(); ++i)
            acc += static_cast<double>(c[i]) * c[i];
        return acc;
    }

    double
    sum(size_t col) const override
    {
        const float *c = matrix_.colData(col);
        double acc = 0.0;
        for (size_t i = 0; i < matrix_.rows(); ++i)
            acc += c[i];
        return acc;
    }

    double
    value(size_t row, size_t col) const override
    {
        return matrix_.get(row, col);
    }

  private:
    const DenseColumnMatrix &matrix_;
};

/**
 * Reference view over binary toggles using the per-bit scalar kernels
 * and virtual dispatch only (the solver's concrete-view fast path does
 * not recognize it). This is the all-optimizations-off baseline for
 * bench_perf_solver and the oracle for the solver equivalence suite —
 * it reproduces the pre-optimization solver behavior exactly.
 */
class ScalarBitFeatureView : public FeatureView
{
  public:
    explicit ScalarBitFeatureView(const BitColumnMatrix &matrix)
        : matrix_(matrix)
    {}

    size_t rows() const override { return matrix_.rows(); }
    size_t cols() const override { return matrix_.cols(); }

    double
    dot(size_t col, const float *v) const override
    {
        return matrix_.dotColumnScalar(col, v);
    }

    void
    axpy(size_t col, float delta, float *v) const override
    {
        matrix_.axpyColumnScalar(col, delta, v);
    }

    double
    sumSquares(size_t col) const override
    {
        return static_cast<double>(matrix_.colPopcount(col));
    }

    double
    sum(size_t col) const override
    {
        return static_cast<double>(matrix_.colPopcount(col));
    }

    double
    value(size_t row, size_t col) const override
    {
        return matrix_.get(row, col) ? 1.0 : 0.0;
    }

  private:
    const BitColumnMatrix &matrix_;
};

} // namespace apollo

#endif // APOLLO_ML_FEATURE_VIEW_HH
