/**
 * @file
 * Penalized linear regression by cyclic coordinate descent with
 * residual updates, warm starts, and a glmnet-style working-set
 * strategy (iterate on the active set, then sweep all features to pick
 * up KKT violators). This is the optimizer behind both the MCP proxy
 * selection (§4.3) and every linear baseline.
 *
 * The fit hot path is layered for speed (docs/INTERNALS.md §6):
 *  - sequential strong-rule screening restricts full sweeps to a small
 *    strong set, with a KKT verification pass over rejected columns at
 *    convergence (violators are re-admitted and the fit re-solved, so
 *    screening never changes the selected support);
 *  - both the screening estimate and the KKT pass run off a per-column
 *    anchored gradient cache: |<x_j, r>| can move from the exact dot
 *    recorded at column j's anchor by at most ||x_j|| times the
 *    residual path length accumulated since (Cauchy-Schwarz + triangle
 *    inequality), so most rejected columns are certified without any
 *    dot product, and every exact dot re-anchors its own column;
 *  - the per-column gradient passes (screening refresh, KKT, lambdaMax,
 *    column norms) fan out over the shared thread pool with
 *    deterministic per-column outputs;
 *  - the sweep kernel is instantiated per concrete FeatureView so the
 *    inner dot/axpy calls devirtualize.
 */

#ifndef APOLLO_ML_COORDINATE_DESCENT_HH
#define APOLLO_ML_COORDINATE_DESCENT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ml/feature_view.hh"
#include "ml/penalty.hh"

namespace apollo {

class ThreadPool;

/** Solver configuration. */
struct CdConfig
{
    PenaltyConfig penalty;
    bool fitIntercept = true;
    uint32_t maxSweeps = 300;
    /** Convergence: max scaled weight change below tol * std(y). */
    double tol = 1e-4;
    /**
     * Sequential strong-rule screening (Tibshirani et al.): sweep only
     * columns whose warm-start gradient exceeds 2*lambda - lambdaRef,
     * then verify the KKT conditions of the rejected columns at
     * convergence and re-solve with any violators re-admitted. Exact —
     * only the work changes, never the solution. Applies to the
     * sparsity-inducing penalties (Lasso/MCP) with lambda > 0.
     */
    bool screen = true;
    /**
     * Lambda at which the warm start (or the cold zero solution) is
     * optimal; <= 0 means unknown, in which case the first-point rule
     * anchors at lambdaMax. The path drivers in solver_path.cc set
     * this per point.
     */
    double screenLambdaRef = -1.0;
};

/** Fitted model. */
struct CdResult
{
    std::vector<float> w;
    double intercept = 0.0;
    uint32_t sweeps = 0;
    double trainMse = 0.0;
    bool converged = false;
    /** KKT verification passes run over screened-out columns. */
    uint32_t kktPasses = 0;
    /**
     * Gradient dot products spent on screening/KKT verification:
     * columns the anchored-cache bound could not certify (served by
     * the fast float kernel), plus the one-time cache bootstrap. The
     * remaining columns were certified KKT-satisfying with no dot at
     * all.
     */
    uint32_t kktDots = 0;
    /** Live columns excluded from sweeps by the final strong set. */
    uint32_t screenedOut = 0;
    /** Columns in the final strong set (the working set kept hot in
     *  RAM — the out-of-core path's resident column count). */
    uint32_t strongSize = 0;

    size_t nonzeros() const;
    /** Indices of nonzero weights, ascending. */
    std::vector<uint32_t> support() const;
};

/**
 * Precomputed construction-time statistics for CdSolver, harvested by
 * an external streaming pass (ShardedFeatureView::screen()). Seeding
 * skips the solver's own lambdaMax pass and gradient-cache bootstrap —
 * the two whole-matrix scans that would otherwise fault every cold
 * column back off disk. The values must be EXACTLY what the solver's
 * own passes produce (same kernels, same inputs): gradY[j] is
 * <x_j, y - float(mean(y))> from bitkernels::dotWords — the gradient
 * at the centered cold residual a fit screens at after its first
 * intercept update — and lambdaMax is max_j |<x_j, y - mean(y)>| / N
 * over live columns (the constructor's double-centered recipe). A
 * cold-start fit on a seeded solver is then bit-identical to the
 * unseeded one: the first intercept update reproduces the exact
 * centered residual the seed was computed at, so the seeded anchor
 * state matches the bootstrap's and the first drift accounting sees a
 * zero increment.
 */
struct SolverSeed
{
    /** Exact <x_j, y - float(mean(y))> per column (cols() entries;
     *  dead columns ignored). */
    std::vector<double> gradY;
    /** max_j |<x_j, y - mean(y)>| / N; < 0 means not provided. */
    double lambdaMax = -1.0;
};

/**
 * Coordinate-descent solver bound to one (X, y) pair; reusable across
 * penalty configurations (warm starts make lambda paths cheap).
 * Centered labels and lambdaMax are computed once and cached — every
 * path driver used to recompute them per call.
 */
class CdSolver
{
  public:
    /** Execution options (orthogonal to the math in CdConfig). */
    struct Options
    {
        /** Fan per-column passes over the thread pool. */
        bool parallel = true;
        /** Pool to use; nullptr means ThreadPool::global(). */
        ThreadPool *pool = nullptr;
    };

    CdSolver(const FeatureView &X, std::span<const float> y);
    CdSolver(const FeatureView &X, std::span<const float> y,
             Options options);
    /** Seeded variant (see SolverSeed): adopts the precomputed
     *  lambdaMax and installs gradY as the anchored gradient cache at
     *  the r = y state, as if bootstrapGradCache had just run on a
     *  cold residual. */
    CdSolver(const FeatureView &X, std::span<const float> y,
             Options options, SolverSeed seed);

    /**
     * Fit with @p config. If @p warm_start is non-null it must have
     * cols() entries and seeds the weights.
     */
    CdResult fit(const CdConfig &config,
                 const CdResult *warm_start = nullptr);

    /**
     * Largest lambda with an all-zero solution (for L1-family paths):
     * max_j |<x_j, y - mean(y)>| / N. Cached after the first call.
     */
    double lambdaMax() const;

    /** Column norms a_j = <x_j, x_j>/N (cached). */
    const std::vector<double> &columnNorms() const { return a_; }

    /** y - mean(y), computed once at construction. */
    std::span<const float> centeredLabels() const { return yCentered_; }

    double labelMean() const { return yMean_; }

  private:
    template <typename View>
    CdResult fitImpl(const View &X, const CdConfig &config,
                     const CdResult *warm_start);
    /** One coordinate-descent sweep over @p cols, releasing the
     *  backing pages of each swept chunk on out-of-core views. */
    template <typename View>
    double sweepOver(const View &X, std::span<const uint32_t> cols,
                     const CdConfig &cfg, std::vector<float> &w,
                     std::vector<float> &r);
    void updateIntercept(std::vector<float> &r, double &intercept);
    /**
     * out[k] = <x_cols[k], r> for all k, fanned over the pool when
     * enabled. Deterministic: each output depends only on its column.
     */
    void columnGradients(std::span<const uint32_t> cols, const float *r,
                         double *out) const;
    /** Approximate variant through FeatureView::dotColumnsFast; each
     *  out[k] is within kDotFastRelErr * xNorm_[cols[k]] * ||r||. */
    void columnGradientsFast(std::span<const uint32_t> cols,
                             const float *r, double *out) const;
    /** First use: exact dots for every live column at @p r. */
    void bootstrapGradCache(const std::vector<float> &r);
    /**
     * Fold the residual movement since the last accounting event into
     * the running drift totals: d = r - lastResidual_ is split into an
     * all-ones component (intercept updates move the whole residual by
     * a constant; it shifts every gradient by exactly mean * sum(x_j),
     * so it is tracked as a signed exact term in meanAcc_) and an
     * orthogonal remainder whose norm is added to driftAcc_.
     */
    void advanceDriftAccount(const std::vector<float> &r);
    /**
     * Upper bound on |<x_j, r>| at the residual of the last accounting
     * event, from column j's private anchor: the exact dot recorded
     * there, the exact mean shift since, and a Cauchy-Schwarz radius
     * xNorm_[j] * (driftAcc_ - anchorDrift_[j]). Summing per-event perp
     * norms (triangle inequality) is looser than one anchored distance,
     * but lets every exact dot re-anchor its own column for free — the
     * marginal columns re-anchor every KKT pass, so no batched
     * whole-matrix refresh is ever needed.
     */
    double certBound(uint32_t j) const;
    /**
     * Record dots (taken at the last accounting event's residual) as
     * the new anchors of @p cols. @p extraDrift inflates each anchor's
     * radius; passing the approximate kernel's error bound divided by
     * xNorm (constant across columns: kDotFastRelErr * ||r||) makes
     * anchors from dotColumnsFast results rigorous.
     */
    void anchorColumns(std::span<const uint32_t> cols, const double *dots,
                       double extraDrift = 0.0);

    const FeatureView &X_;
    std::span<const float> y_;
    std::vector<double> a_;      ///< <x_j,x_j>/N
    std::vector<double> xNorm_;  ///< ||x_j||_2 = sqrt(N * a_j)
    std::vector<double> colSum_; ///< <x_j, 1> (for the drift mean term)
    std::vector<uint32_t> live_; ///< columns with a_j > 0
    double yStd_ = 1.0;
    double yMean_ = 0.0;
    std::vector<float> yCentered_;
    mutable double lambdaMax_ = -1.0; ///< cache; -1 = not yet computed
    bool parallel_ = true;
    ThreadPool *pool_ = nullptr;
    std::vector<double> gradBuf_; ///< scratch for screening/KKT passes
    /** Scratch: borderline columns refetched exactly per KKT pass. */
    std::vector<uint32_t> exact_;

    /**
     * Per-column anchored gradient cache for screening and KKT
     * certification (see certBound()). Self-describing — valid at any
     * lambda or penalty, for any fit on this solver — because the
     * accounting is over actual residuals: cachedDot_[j] is the exact
     * <x_j, r_event> at the accounting event where column j was last
     * anchored, and (anchorMean_[j], anchorDrift_[j]) snapshot the
     * running totals at that event.
     */
    std::vector<double> cachedDot_;    ///< indexed by column
    std::vector<double> anchorMean_;   ///< meanAcc_ at the anchor event
    std::vector<double> anchorDrift_;  ///< driftAcc_ at the anchor event
    std::vector<float> lastResidual_;  ///< residual at the last event
    double meanAcc_ = 0.0;  ///< cumulative signed mean of increments
    double driftAcc_ = 0.0; ///< cumulative perp norm of increments
    /**
     * Bound on the residual movement applied since the last accounting
     * event (sum of ||delta * x_j|| over coordinate/intercept updates).
     * Lets the sweep kernel recycle the exact dots it computes anyway:
     * a column swept mid-sweep is re-anchored with
     * anchorDrift_[j] = driftAcc_ - pendingDrift_, which over-covers
     * the movement between the last event and the moment of the dot.
     * Marginal w = 0 columns in the strong set thus refresh their
     * anchors every sweep at zero extra dot cost, keeping the next
     * fit's screening bounds tight.
     */
    double pendingDrift_ = 0.0;
    bool gradCacheValid_ = false;
};

} // namespace apollo

#endif // APOLLO_ML_COORDINATE_DESCENT_HH
