/**
 * @file
 * Penalized linear regression by cyclic coordinate descent with
 * residual updates, warm starts, and a glmnet-style working-set
 * strategy (iterate on the active set, then sweep all features to pick
 * up KKT violators). This is the optimizer behind both the MCP proxy
 * selection (§4.3) and every linear baseline.
 */

#ifndef APOLLO_ML_COORDINATE_DESCENT_HH
#define APOLLO_ML_COORDINATE_DESCENT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ml/feature_view.hh"
#include "ml/penalty.hh"

namespace apollo {

/** Solver configuration. */
struct CdConfig
{
    PenaltyConfig penalty;
    bool fitIntercept = true;
    uint32_t maxSweeps = 300;
    /** Convergence: max scaled weight change below tol * std(y). */
    double tol = 1e-4;
};

/** Fitted model. */
struct CdResult
{
    std::vector<float> w;
    double intercept = 0.0;
    uint32_t sweeps = 0;
    double trainMse = 0.0;
    bool converged = false;

    size_t nonzeros() const;
    /** Indices of nonzero weights, ascending. */
    std::vector<uint32_t> support() const;
};

/**
 * Coordinate-descent solver bound to one (X, y) pair; reusable across
 * penalty configurations (warm starts make lambda paths cheap).
 */
class CdSolver
{
  public:
    CdSolver(const FeatureView &X, std::span<const float> y);

    /**
     * Fit with @p config. If @p warm_start is non-null it must have
     * cols() entries and seeds the weights.
     */
    CdResult fit(const CdConfig &config,
                 const CdResult *warm_start = nullptr);

    /**
     * Largest lambda with an all-zero solution (for L1-family paths):
     * max_j |<x_j, y - mean(y)>| / N.
     */
    double lambdaMax() const;

    /** Column norms a_j = <x_j, x_j>/N (cached). */
    const std::vector<double> &columnNorms() const { return a_; }

  private:
    double sweepOver(std::span<const uint32_t> cols, const CdConfig &cfg,
                     std::vector<float> &w, std::vector<float> &r) const;
    void updateIntercept(std::vector<float> &r, double &intercept) const;

    const FeatureView &X_;
    std::span<const float> y_;
    std::vector<double> a_;      ///< <x_j,x_j>/N
    std::vector<uint32_t> live_; ///< columns with a_j > 0
    double yStd_ = 1.0;
};

} // namespace apollo

#endif // APOLLO_ML_COORDINATE_DESCENT_HH
