#include "ml/metrics.hh"

#include <algorithm>
#include <cmath>

#include "ml/coordinate_descent.hh"
#include "util/logging.hh"

namespace apollo {

double
mean(std::span<const float> v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (float x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

double
r2Score(std::span<const float> label, std::span<const float> pred)
{
    APOLLO_REQUIRE(label.size() == pred.size() && !label.empty(),
                   "metric arity mismatch");
    const double mu = mean(label);
    double sse = 0.0;
    double sst = 0.0;
    for (size_t i = 0; i < label.size(); ++i) {
        const double e = static_cast<double>(label[i]) - pred[i];
        const double d = label[i] - mu;
        sse += e * e;
        sst += d * d;
    }
    if (sst <= 0.0)
        return sse <= 0.0 ? 1.0 : 0.0;
    return 1.0 - sse / sst;
}

double
nrmse(std::span<const float> label, std::span<const float> pred)
{
    APOLLO_REQUIRE(label.size() == pred.size() && !label.empty(),
                   "metric arity mismatch");
    const double mu = mean(label);
    APOLLO_REQUIRE(mu != 0.0, "NRMSE undefined for zero-mean labels");
    double sse = 0.0;
    for (size_t i = 0; i < label.size(); ++i) {
        const double e = static_cast<double>(label[i]) - pred[i];
        sse += e * e;
    }
    return std::sqrt(sse / static_cast<double>(label.size())) / mu;
}

double
nmae(std::span<const float> label, std::span<const float> pred)
{
    APOLLO_REQUIRE(label.size() == pred.size() && !label.empty(),
                   "metric arity mismatch");
    double abs_err = 0.0;
    double label_sum = 0.0;
    for (size_t i = 0; i < label.size(); ++i) {
        abs_err += std::abs(static_cast<double>(label[i]) - pred[i]);
        label_sum += label[i];
    }
    APOLLO_REQUIRE(label_sum != 0.0, "NMAE undefined for zero-sum labels");
    return abs_err / label_sum;
}

double
pearson(std::span<const float> a, std::span<const float> b)
{
    APOLLO_REQUIRE(a.size() == b.size() && a.size() > 1,
                   "metric arity mismatch");
    const double ma = mean(a);
    const double mb = mean(b);
    double cov = 0.0;
    double va = 0.0;
    double vb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va <= 0.0 || vb <= 0.0)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

double
averageVif(const BitColumnMatrix &X, double ridge, double cap)
{
    const size_t q = X.cols();
    APOLLO_REQUIRE(q >= 2, "VIF needs at least two columns");
    const size_t n = X.rows();

    BitFeatureView view(X);
    double vif_sum = 0.0;
    size_t counted = 0;

    CdConfig cfg;
    cfg.penalty.kind = PenaltyKind::Ridge;
    cfg.penalty.lambda2 = ridge;
    cfg.maxSweeps = 60;
    cfg.tol = 1e-4;

    std::vector<float> target(n);
    for (size_t j = 0; j < q; ++j) {
        // Regress column j on all other columns (ridge-regularized).
        for (size_t i = 0; i < n; ++i)
            target[i] = X.get(i, j) ? 1.0f : 0.0f;
        const double mu = mean(target);
        double sst = 0.0;
        for (float v : target)
            sst += (v - mu) * (v - mu);
        if (sst <= 0.0)
            continue; // constant column: VIF undefined, skip

        // Mask column j by zeroing its own weight each sweep: easiest is
        // a solver over a view minus the column; emulate by fitting on
        // all columns, then reject self-fit by excluding j via a copied
        // matrix. Cheaper: build the selected-minus-one matrix.
        std::vector<uint32_t> others;
        others.reserve(q - 1);
        for (size_t c = 0; c < q; ++c)
            if (c != j)
                others.push_back(static_cast<uint32_t>(c));
        const BitColumnMatrix sub = X.selectColumns(others);
        BitFeatureView sub_view(sub);
        CdSolver solver(sub_view, target);
        const CdResult fit = solver.fit(cfg);

        std::vector<float> pred(n);
        sub_view.predict(fit.w, fit.intercept, pred.data());
        double sse = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double e = static_cast<double>(target[i]) - pred[i];
            sse += e * e;
        }
        const double r2 = 1.0 - sse / sst;
        const double vif =
            r2 >= 1.0 ? cap : std::min(cap, 1.0 / (1.0 - r2));
        vif_sum += vif;
        counted++;
    }
    APOLLO_REQUIRE(counted > 0, "no usable columns for VIF");
    return vif_sum / static_cast<double>(counted);
}

} // namespace apollo
