/**
 * @file
 * Signal clustering for the Simmani baseline [40]: K-means over toggle
 * time-series. Columns are first sketched into a low-dimensional space
 * by random projection (toggle vectors are N-cycle long; the sketch
 * preserves pairwise distances well enough for clustering), normalized
 * to unit length so clusters capture toggle *shape* rather than rate,
 * then Lloyd-iterated with k-means++ seeding. One representative signal
 * (closest to the centroid) is selected per cluster — Simmani's
 * unsupervised proxy selection.
 */

#ifndef APOLLO_ML_KMEANS_HH
#define APOLLO_ML_KMEANS_HH

#include <cstdint>
#include <vector>

#include "util/bitvec.hh"

namespace apollo {

/** K-means configuration. */
struct KmeansConfig
{
    uint32_t k = 64;
    uint32_t sketchDims = 32;
    uint32_t iterations = 12;
    uint64_t seed = 0x4b4bULL;
};

/** Clustering output. */
struct KmeansResult
{
    /** Cluster id per column (k = sentinel for empty columns). */
    std::vector<uint32_t> assignment;
    /** One representative column id per cluster. */
    std::vector<uint32_t> representatives;
    /** Mean within-cluster distance (diagnostic). */
    double inertia = 0.0;
};

/** Cluster the columns of @p X into k groups. */
KmeansResult kmeansSignals(const BitColumnMatrix &X,
                           const KmeansConfig &config);

} // namespace apollo

#endif // APOLLO_ML_KMEANS_HH
