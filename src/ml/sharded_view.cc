#include "ml/sharded_view.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

/** Mirrors the certification slack in coordinate_descent.cc — the
 *  admission estimate must err on the same side as the solver. */
constexpr double kBoundSlack = 1.0 + 1e-8;

constexpr size_t kParallelMinCols = 128;

/** Widening applied to each released column run. A fault on a cached
 *  file maps the entire containing page-cache folio (up to 2 MiB on
 *  kernels with large-folio support), plus fault-around/readahead —
 *  so the pages a touch made resident extend up to a folio's width
 *  past the column itself. The margin covers one max-size folio on
 *  each side. See ShardedFeatureView::releaseColumns. */
constexpr uint64_t kReleaseMarginBytes = 2 * 1024 * 1024;

} // namespace

std::vector<uint64_t>
ShardScreenStats::admittedAtFirstPoint(double lambda_factor) const
{
    // First point of a geometric path: lambda = factor * lambdaMax,
    // screened against lambdaRef = lambdaMax at the centered cold
    // residual, so the strong rule admits
    // |<x_j, y - float(mean(y))>| * slack >= (2*factor - 1)*lambdaMax*N
    // (plus warm-start nonzeros, which are none at the path head).
    const double thresh = (2.0 * lambda_factor - 1.0) * lambdaMax *
                          static_cast<double>(rows);
    std::vector<uint64_t> admitted(firstCol.size(), 0);
    if (firstCol.empty())
        return admitted;
    uint32_t k = 0;
    for (size_t j = 0; j < gradY.size(); ++j) {
        while (k + 1 < firstCol.size() && j >= firstCol[k + 1])
            k++;
        if (popcount[j] > 0 &&
            (thresh <= 0.0 || std::abs(gradY[j]) * kBoundSlack >= thresh))
            admitted[k]++;
    }
    return admitted;
}

ShardedFeatureView::ShardedFeatureView(const MappedShardSet &set)
    : ShardedFeatureView(set, Options())
{}

ShardedFeatureView::ShardedFeatureView(const MappedShardSet &set,
                                       Options options)
    : set_(set), parallel_(options.parallel),
      pool_(options.pool ? options.pool : &ThreadPool::global())
{}

void
ShardedFeatureView::releaseColumns(std::span<const uint32_t> cols) const
{
    // Coalesce ascending runs of column ids into contiguous ranges and
    // split each range along shard boundaries — one madvise per
    // (run, shard) instead of one per column. Callers (the solver's
    // chunked gradient passes) hand us sorted chunks.
    //
    // Each run is widened by a margin before release: a page fault on
    // a cached file maps neighboring already-cached pages into the
    // page table along with the one asked for — the whole containing
    // page-cache folio (up to 2 MiB with large folios) plus the
    // fault-around window. Releasing only the column's own pages
    // would leave that spill mapped forever; the payload would
    // quietly re-materialize at many times the touched footprint. The
    // margin over-covers the spill; releasing a neighbor a later
    // sweep still wants is just a cheap refault from the page cache.
    const uint64_t bytes_per_col = set_.wordsPerCol() * sizeof(uint64_t);
    const uint64_t margin = kReleaseMarginBytes / bytes_per_col + 1;
    auto flush = [&](uint64_t first, uint64_t last) {
        while (first <= last) {
            const uint32_t k = set_.shardOf(first);
            const uint64_t shard_end =
                set_.shardFirst(k) + set_.shardCols(k) - 1;
            const uint64_t run_last = std::min(last, shard_end);
            set_.adviseColumns(k, first - set_.shardFirst(k),
                               run_last - first + 1,
                               MappedShardSet::Advice::DontNeed);
            if (run_last == last)
                break;
            first = run_last + 1;
        }
    };
    uint64_t lo = 0, hi = 0;
    bool open = false;
    size_t i = 0;
    while (i < cols.size()) {
        size_t j = i + 1;
        while (j < cols.size() && cols[j] == cols[j - 1] + 1)
            ++j;
        const uint64_t first = cols[i] > margin ? cols[i] - margin : 0;
        const uint64_t last =
            std::min<uint64_t>(cols[j - 1] + margin, set_.cols() - 1);
        if (open && first <= hi + 1) {
            hi = std::max(hi, last); // widened runs overlap: merge
        } else {
            if (open)
                flush(lo, hi);
            lo = first;
            hi = last;
            open = true;
        }
        i = j;
    }
    if (open)
        flush(lo, hi);
}

Status
ShardedFeatureView::screen(std::span<const float> y)
{
    const size_t n = set_.rows();
    const size_t m = set_.cols();
    if (y.size() != n)
        return Status::invalidArgument("screen labels have ", y.size(),
                                       " rows, shard set has ", n);

    // Two centered copies of y, each matching one solver recipe bit
    // for bit. yc_path (double subtraction, then narrowed) is the
    // constructor's yCentered_ — the lambdaMax harvested below must
    // match CdSolver::lambdaMax() exactly. yc_cold (float subtraction
    // of the narrowed mean) is the residual updateIntercept() leaves
    // after a cold fit's first intercept step — the residual the
    // solver bootstraps its gradient cache at, so the SolverSeed dots
    // must be taken against exactly these floats. The two differ in
    // the last ulp for some rows; mixing them up shifts borderline
    // screening decisions and breaks seeded-vs-cold bit-identity.
    double mu = 0.0;
    for (float v : y)
        mu += v;
    mu /= static_cast<double>(n);
    const auto muf = static_cast<float>(mu);
    std::vector<float> yc_path(n);
    std::vector<float> yc_cold(n);
    for (size_t i = 0; i < n; ++i) {
        yc_path[i] = static_cast<float>(y[i] - mu);
        yc_cold[i] = y[i] - muf;
    }

    stats_ = ShardScreenStats();
    stats_.rows = n;
    stats_.popcount.assign(m, 0);
    stats_.gradY.assign(m, 0.0);
    stats_.colsScanned.assign(set_.shardCount(), 0);
    stats_.firstCol.resize(set_.shardCount());
    std::vector<double> abs_grad_yc(m, 0.0);
    std::atomic<bool> tail_bad{false};

    const size_t words = set_.wordsPerCol();
    for (uint32_t k = 0; k < set_.shardCount(); ++k) {
        const uint64_t first = set_.shardFirst(k);
        const uint64_t count = set_.shardCols(k);
        stats_.firstCol[k] = first;
        set_.adviseShard(k, MappedShardSet::Advice::Sequential);
        auto body = [&](size_t begin, size_t end) {
            for (size_t c = begin; c < end; ++c) {
                const uint64_t j = first + c;
                if (!set_.columnTailClean(j)) {
                    tail_bad.store(true, std::memory_order_relaxed);
                    continue;
                }
                const uint64_t *w = set_.colWords(j);
                uint64_t pop = 0;
                for (size_t t = 0; t < words; ++t)
                    pop += static_cast<uint64_t>(
                        __builtin_popcountll(w[t]));
                stats_.popcount[j] = pop;
                if (pop == 0)
                    continue; // dead column; solver drops it too
                stats_.gradY[j] =
                    bitkernels::dotWords(w, words, n, yc_cold.data());
                abs_grad_yc[j] = std::abs(
                    bitkernels::dotWords(w, words, n, yc_path.data()));
            }
        };
        if (parallel_ && count >= kParallelMinCols)
            pool_->parallelFor(count, body);
        else
            body(0, count);
        stats_.colsScanned[k] = count;
        stats_.bytesStreamed += count * words * sizeof(uint64_t);
        // Drop this shard's pages before the next one streams in:
        // peak RSS stays one shard wide. Columns the solver later
        // admits refault on first touch and then stay hot.
        set_.adviseShard(k, MappedShardSet::Advice::DontNeed);
        // The solve phase that follows touches columns at random
        // (strong-set sweeps, KKT spot checks). Default readahead
        // turns every such touch into a ~128 KiB window that
        // releaseColumns never covers, silently re-materializing the
        // payload; RANDOM makes a fault bring exactly the page asked
        // for, so residency stays what the solver actually touches.
        set_.adviseShard(k, MappedShardSet::Advice::Random);
    }
    if (tail_bad.load(std::memory_order_relaxed)) {
        // Error path only: re-scan sequentially to name the first
        // offending column.
        Status st = set_.validateTails();
        if (!st.ok())
            return st;
        return Status::parseError("shard payload failed the zero-tail "
                                  "contract");
    }

    // max over live columns of |<x_j, yc>| / N — same expression, and
    // therefore the same double, as CdSolver::lambdaMax().
    double best = 0.0;
    for (size_t j = 0; j < m; ++j)
        if (stats_.popcount[j] > 0)
            best = std::max(best, abs_grad_yc[j] /
                                      static_cast<double>(n));
    stats_.lambdaMax = best;
    return Status::okStatus();
}

} // namespace apollo
