#include "ml/pca.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

/** In-place modified Gram-Schmidt on row-major (n x k) Y. */
void
orthonormalizeColumns(std::vector<float> &y, size_t n, size_t k)
{
    for (size_t c = 0; c < k; ++c) {
        for (size_t p = 0; p < c; ++p) {
            double dot = 0.0;
            for (size_t i = 0; i < n; ++i)
                dot += static_cast<double>(y[i * k + c]) * y[i * k + p];
            const auto d = static_cast<float>(dot);
            for (size_t i = 0; i < n; ++i)
                y[i * k + c] -= d * y[i * k + p];
        }
        double norm = 0.0;
        for (size_t i = 0; i < n; ++i)
            norm += static_cast<double>(y[i * k + c]) * y[i * k + c];
        norm = std::sqrt(norm);
        const auto inv =
            static_cast<float>(norm > 1e-12 ? 1.0 / norm : 0.0);
        for (size_t i = 0; i < n; ++i)
            y[i * k + c] *= inv;
    }
}

/**
 * Z (n x k) = centered-X * W (m x k): accumulate V rows over set bits,
 * then subtract the rank-one mean correction.
 */
std::vector<float>
multiplyCentered(const BitColumnMatrix &X, const std::vector<float> &w,
                 const std::vector<float> &mean_vec, size_t k)
{
    const size_t n = X.rows();
    const size_t m = X.cols();
    std::vector<float> z(n * k, 0.0f);
    // Column-parallel would race on z rows; parallelize over row blocks
    // instead by splitting each column's contribution — simplest safe
    // scheme: sequential over columns, vectorized inner loop. Columns
    // dominate (nnz * k work); parallelize by sharding k.
    parallelFor(k, [&](size_t k0, size_t k1) {
        for (size_t c = 0; c < m; ++c) {
            const float *wr = &w[c * k];
            X.forEachSetBit(c, [&](size_t row) {
                float *zr = &z[row * k];
                for (size_t t = k0; t < k1; ++t)
                    zr[t] += wr[t];
            });
        }
    });
    // Mean correction: z_row -= mean^T W (same for every row).
    std::vector<double> corr(k, 0.0);
    for (size_t c = 0; c < m; ++c)
        for (size_t t = 0; t < k; ++t)
            corr[t] += static_cast<double>(mean_vec[c]) * w[c * k + t];
    for (size_t i = 0; i < n; ++i)
        for (size_t t = 0; t < k; ++t)
            z[i * k + t] -= static_cast<float>(corr[t]);
    return z;
}

/** W (m x k) = centered-X^T * Z (n x k). */
std::vector<float>
multiplyTransposeCentered(const BitColumnMatrix &X,
                          const std::vector<float> &z,
                          const std::vector<float> &mean_vec, size_t k)
{
    const size_t m = X.cols();
    const size_t n = X.rows();
    std::vector<float> w(m * k, 0.0f);
    // Column sums of Z (for the mean correction).
    std::vector<double> z_col_sum(k, 0.0);
    for (size_t i = 0; i < n; ++i)
        for (size_t t = 0; t < k; ++t)
            z_col_sum[t] += z[i * k + t];

    parallelFor(m, [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
            float *wr = &w[c * k];
            X.forEachSetBit(c, [&](size_t row) {
                const float *zr = &z[row * k];
                for (size_t t = 0; t < k; ++t)
                    wr[t] += zr[t];
            });
            for (size_t t = 0; t < k; ++t)
                wr[t] -= static_cast<float>(mean_vec[c] * z_col_sum[t]);
        }
    });
    return w;
}

} // namespace

void
PcaModel::projectRow(const std::vector<uint32_t> &set_cols,
                     float *z_out) const
{
    for (size_t t = 0; t < components; ++t)
        z_out[t] = -meanDotV_[t];
    for (uint32_t c : set_cols) {
        const float *vr = &v[c * components];
        for (size_t t = 0; t < components; ++t)
            z_out[t] += vr[t];
    }
}

std::vector<float>
PcaModel::projectAll(const BitColumnMatrix &X) const
{
    APOLLO_REQUIRE(X.cols() == inputDims, "PCA dimension mismatch");
    return multiplyCentered(X, v, meanVec, components);
}

PcaModel
fitPca(const BitColumnMatrix &X, size_t k, uint64_t seed)
{
    const size_t n = X.rows();
    const size_t m = X.cols();
    APOLLO_REQUIRE(k >= 1 && k <= std::min(n, m), "bad component count");

    PcaModel model;
    model.inputDims = m;
    model.components = k;
    model.meanVec.resize(m);
    for (size_t c = 0; c < m; ++c)
        model.meanVec[c] = static_cast<float>(
            static_cast<double>(X.colPopcount(c)) / n);

    // Random start W = G (m x k).
    Xoshiro256StarStar rng(seed);
    std::vector<float> w(m * k);
    for (float &x : w)
        x = static_cast<float>(rng.nextGaussian());

    // Range finding with one power iteration.
    std::vector<float> y = multiplyCentered(X, w, model.meanVec, k);
    orthonormalizeColumns(y, n, k);
    w = multiplyTransposeCentered(X, y, model.meanVec, k);
    orthonormalizeColumns(w, m, k);
    y = multiplyCentered(X, w, model.meanVec, k);
    orthonormalizeColumns(y, n, k);
    w = multiplyTransposeCentered(X, y, model.meanVec, k);
    orthonormalizeColumns(w, m, k);

    model.v = std::move(w);
    model.meanDotV_.assign(k, 0.0f);
    for (size_t c = 0; c < m; ++c)
        for (size_t t = 0; t < k; ++t)
            model.meanDotV_[t] += model.meanVec[c] *
                                  model.v[c * k + t];
    return model;
}

} // namespace apollo
