#include "ml/solver_path.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace apollo {

std::vector<PathPoint>
runLambdaPath(CdSolver &solver, CdConfig base,
              const PathConfig &path_config)
{
    APOLLO_REQUIRE(base.penalty.kind == PenaltyKind::Lasso ||
                       base.penalty.kind == PenaltyKind::Mcp,
                   "lambda paths apply to L1-family penalties");
    const double lambda_max = solver.lambdaMax();
    APOLLO_REQUIRE(lambda_max > 0.0, "labels are constant");

    std::vector<PathPoint> path;
    CdResult warm;
    double lambda = lambda_max * path_config.lambdaFactor;
    double prev_lambda = lambda_max; // anchor for the sequential rule
    for (uint32_t k = 0; k < path_config.maxPoints; ++k) {
        base.penalty.lambda = lambda;
        base.screenLambdaRef = prev_lambda;
        PathPoint point;
        point.lambda = lambda;
        point.result =
            solver.fit(base, path.empty() ? nullptr : &warm);
        point.nonzeros = point.result.nonzeros();
        warm = point.result;
        APOLLO_COUNT("apollo.solver.path_points", 1);
        APOLLO_OBSERVE("apollo.solver.lambda_sweeps",
                       static_cast<double>(point.result.sweeps),
                       ::apollo::obs::countBounds());
        path.push_back(std::move(point));

        if (path_config.stopAtNonzeros &&
            path.back().nonzeros >= path_config.stopAtNonzeros)
            break;
        prev_lambda = lambda;
        lambda *= path_config.lambdaFactor;
        if (lambda < lambda_max * path_config.minLambdaRatio)
            break;
    }
    return path;
}

namespace {

/** Trim a solution's support to the target_q largest scaled weights. */
void
trimSupport(CdResult &result, size_t target_q,
            const std::vector<double> &col_norms)
{
    std::vector<std::pair<double, uint32_t>> ranked;
    for (size_t j = 0; j < result.w.size(); ++j) {
        if (result.w[j] != 0.0f)
            ranked.emplace_back(std::abs(result.w[j]) *
                                    std::sqrt(col_norms[j]),
                                static_cast<uint32_t>(j));
    }
    if (ranked.size() <= target_q)
        return;
    std::nth_element(
        ranked.begin(), ranked.begin() + static_cast<long>(target_q),
        ranked.end(),
        [](const auto &a, const auto &b) { return a.first > b.first; });
    for (size_t k = target_q; k < ranked.size(); ++k)
        result.w[ranked[k].second] = 0.0f;
}

} // namespace

CdResult
solveForTargetQ(CdSolver &solver, CdConfig base, size_t target_q,
                TargetQDiagnostics *diag)
{
    APOLLO_REQUIRE(target_q >= 1, "target Q must be positive");

    PathConfig path_config;
    path_config.stopAtNonzeros = target_q;
    std::vector<PathPoint> path = runLambdaPath(solver, base, path_config);
    APOLLO_REQUIRE(!path.empty(), "empty path");

    if (diag) {
        diag->pathPoints = path.size();
        for (const PathPoint &p : path) {
            diag->totalSweeps += p.result.sweeps;
            diag->totalKktPasses += p.result.kktPasses;
            diag->totalKktDots += p.result.kktDots;
            diag->peakStrongSize = std::max(
                diag->peakStrongSize, size_t{p.result.strongSize});
        }
    }

    const PathPoint &last = path.back();
    if (last.nonzeros == target_q) {
        if (diag) {
            diag->lambda = last.lambda;
            diag->trimmed = false;
        }
        return last.result;
    }
    if (last.nonzeros < target_q) {
        // Path exhausted before reaching target (tiny designs): trim is
        // a no-op; return the densest solution available.
        CdResult res = last.result;
        if (diag) {
            diag->lambda = last.lambda;
            diag->trimmed = false;
        }
        return res;
    }

    // Bracket: previous point (nnz < Q) and last point (nnz > Q).
    double lambda_hi =
        path.size() >= 2 ? path[path.size() - 2].lambda
                         : last.lambda / path_config.lambdaFactor;
    double lambda_lo = last.lambda;
    CdResult best = last.result;
    double best_lambda = last.lambda;
    size_t best_nnz = last.nonzeros;
    CdResult warm = last.result;
    double warm_lambda = last.lambda;

    size_t bisections = 0;
    for (; bisections < 12; ++bisections) {
        APOLLO_COUNT("apollo.solver.bisections", 1);
        const double lambda_mid =
            std::sqrt(lambda_lo * lambda_hi); // geometric midpoint
        base.penalty.lambda = lambda_mid;
        base.screenLambdaRef = warm_lambda;
        CdResult mid = solver.fit(base, &warm);
        const size_t nnz = mid.nonzeros();
        warm = mid;
        warm_lambda = lambda_mid;
        if (diag) {
            diag->totalSweeps += mid.sweeps;
            diag->totalKktPasses += mid.kktPasses;
            diag->totalKktDots += mid.kktDots;
            diag->peakStrongSize =
                std::max(diag->peakStrongSize, size_t{mid.strongSize});
        }
        if (nnz == target_q) {
            if (diag) {
                diag->lambda = lambda_mid;
                diag->bisections = bisections + 1;
                diag->trimmed = false;
            }
            return mid;
        }
        if (nnz > target_q) {
            // Track the tightest superset solution for trimming.
            if (nnz < best_nnz) {
                best = mid;
                best_nnz = nnz;
                best_lambda = lambda_mid;
            }
            lambda_lo = lambda_mid;
        } else {
            lambda_hi = lambda_mid;
        }
    }

    trimSupport(best, target_q, solver.columnNorms());
    if (diag) {
        diag->lambda = best_lambda;
        diag->bisections = bisections;
        diag->trimmed = true;
    }
    return best;
}

std::vector<CdResult>
solveForTargetsQ(CdSolver &solver, CdConfig base,
                 std::vector<size_t> targets)
{
    APOLLO_REQUIRE(!targets.empty(), "no targets");
    std::vector<size_t> order(targets.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return targets[a] < targets[b];
    });

    const double lambda_max = solver.lambdaMax();
    APOLLO_REQUIRE(lambda_max > 0.0, "labels are constant");
    constexpr double factor = 0.82;
    constexpr double min_ratio = 1e-4;

    std::vector<CdResult> results(targets.size());
    size_t next = 0; // index into `order`

    double lambda = lambda_max * factor;
    double prev_lambda = lambda_max;
    CdResult warm;
    double warm_lambda = lambda_max;
    bool have_warm = false;

    auto solve_at = [&](double lam) {
        base.penalty.lambda = lam;
        base.screenLambdaRef = warm_lambda;
        CdResult res = solver.fit(base, have_warm ? &warm : nullptr);
        warm = res;
        warm_lambda = lam;
        have_warm = true;
        return res;
    };

    while (next < order.size() && lambda > lambda_max * min_ratio) {
        CdResult point = solve_at(lambda);
        size_t nnz = point.nonzeros();

        // Resolve every target bracketed by (prev_lambda, lambda].
        while (next < order.size() && nnz >= targets[order[next]]) {
            const size_t target = targets[order[next]];
            if (nnz == target) {
                results[order[next]] = point;
                next++;
                continue;
            }
            // Bisect within (lambda, prev_lambda) for this target.
            double lo = lambda;
            double hi = prev_lambda;
            CdResult best = point;
            size_t best_nnz = nnz;
            bool exact = false;
            for (int iter = 0; iter < 12; ++iter) {
                APOLLO_COUNT("apollo.solver.bisections", 1);
                const double mid = std::sqrt(lo * hi);
                CdResult mid_res = solve_at(mid);
                const size_t mid_nnz = mid_res.nonzeros();
                if (mid_nnz == target) {
                    results[order[next]] = mid_res;
                    exact = true;
                    break;
                }
                if (mid_nnz > target) {
                    if (mid_nnz < best_nnz) {
                        best = mid_res;
                        best_nnz = mid_nnz;
                    }
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            if (!exact) {
                trimSupport(best, target, solver.columnNorms());
                results[order[next]] = best;
            }
            next++;
            // Re-anchor the warm start on the dense path point so the
            // continuation stays monotone.
            warm = point;
            warm_lambda = lambda;
        }

        prev_lambda = lambda;
        lambda *= factor;
    }

    // Targets the path never reached: return the densest solution
    // available. If no lambda point was ever solved (the loop can be
    // starved by a degenerate lambda range), `warm` would be a
    // default-constructed CdResult with empty weights — solve the path
    // floor explicitly instead of handing that out.
    if (next < order.size() && !have_warm)
        solve_at(lambda_max * min_ratio);
    APOLLO_ASSERT(next >= order.size() || !warm.w.empty(),
                  "densest-solution fallback produced an empty model");
    for (; next < order.size(); ++next)
        results[order[next]] = warm;
    return results;
}

} // namespace apollo
