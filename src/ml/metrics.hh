/**
 * @file
 * Accuracy metrics used throughout the evaluation (§7.1):
 *   R^2 (coefficient of determination), NRMSE, NMAE, Pearson
 *   correlation, and the variance inflation factor (VIF) used in
 *   Fig. 14 to quantify correlation among selected proxies.
 */

#ifndef APOLLO_ML_METRICS_HH
#define APOLLO_ML_METRICS_HH

#include <cstddef>
#include <span>
#include <vector>

#include "util/bitvec.hh"

namespace apollo {

/** Coefficient of determination R^2 = 1 - SSE/SST. */
double r2Score(std::span<const float> label, std::span<const float> pred);

/** NRMSE = RMSE / mean(label), per §7.1. */
double nrmse(std::span<const float> label, std::span<const float> pred);

/** NMAE = sum|err| / sum(label), per §7.1. */
double nmae(std::span<const float> label, std::span<const float> pred);

/** Pearson correlation coefficient. */
double pearson(std::span<const float> a, std::span<const float> b);

/** Mean of a span. */
double mean(std::span<const float> v);

/**
 * Average variance inflation factor over the columns of @p X
 * (each column ridge-regressed on all the others; VIF_j = 1/(1-R_j^2)).
 * @p ridge guards against exact collinearity. VIF values are clamped
 * to @p cap (collinear columns otherwise explode to infinity).
 */
double averageVif(const BitColumnMatrix &X, double ridge = 1e-3,
                  double cap = 1000.0);

} // namespace apollo

#endif // APOLLO_ML_METRICS_HH
