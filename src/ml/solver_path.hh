/**
 * @file
 * Lambda-path driver: warm-started geometric lambda descent for the
 * L1-family penalties (Lasso, MCP), plus a target-Q search — APOLLO
 * adjusts the penalty strength lambda to control the number of selected
 * proxies Q (§4.3).
 */

#ifndef APOLLO_ML_SOLVER_PATH_HH
#define APOLLO_ML_SOLVER_PATH_HH

#include <cstdint>
#include <vector>

#include "ml/coordinate_descent.hh"

namespace apollo {

/** One solved point on a lambda path. */
struct PathPoint
{
    double lambda = 0.0;
    size_t nonzeros = 0;
    CdResult result;
};

/** Path configuration. */
struct PathConfig
{
    /** Geometric decay factor between consecutive lambdas. */
    double lambdaFactor = 0.82;
    /** Stop when lambda < lambdaMax * minLambdaRatio. */
    double minLambdaRatio = 1e-4;
    /** Stop as soon as nonzeros >= this (0 = never). */
    size_t stopAtNonzeros = 0;
    uint32_t maxPoints = 100;
};

/**
 * Run a warm-started lambda path from lambdaMax downward.
 * @p base supplies the penalty family (lambda overwritten per point).
 */
std::vector<PathPoint> runLambdaPath(CdSolver &solver, CdConfig base,
                                     const PathConfig &path_config);

/** Diagnostics from a target-Q search. */
struct TargetQDiagnostics
{
    double lambda = 0.0;
    size_t pathPoints = 0;
    size_t bisections = 0;
    bool trimmed = false; ///< support trimmed to hit Q exactly
    /** Coordinate sweeps summed over every fit of the search. */
    size_t totalSweeps = 0;
    /** KKT re-admission passes summed over every fit of the search. */
    size_t totalKktPasses = 0;
    /** Exact screening/KKT gradient dots summed over every fit. */
    size_t totalKktDots = 0;
    /**
     * Largest strong set over every fit of the search — the peak
     * working set swept each iteration. For the out-of-core sharded
     * path this is the peak count of columns held hot in RAM while
     * the remaining M - peakStrongSize stream from disk only for KKT
     * certification.
     */
    size_t peakStrongSize = 0;
};

/**
 * Find a solution with exactly @p target_q nonzero weights by walking
 * the lambda path until nonzeros >= target_q and bisecting the last
 * bracket. If no lambda yields exactly target_q (support jumps), the
 * smallest support >= target_q is trimmed to the target_q largest
 * |w_j|*sqrt(a_j) weights (the downstream relaxation refits anyway).
 */
CdResult solveForTargetQ(CdSolver &solver, CdConfig base, size_t target_q,
                         TargetQDiagnostics *diag = nullptr);

/**
 * Solve for several target supports with ONE warm-started path walk
 * (the Fig. 10/12 sweeps need solutions at many Q): targets are hit in
 * ascending order as the path densifies, bisecting each bracket.
 * Returns one CdResult per target, in the order given.
 */
std::vector<CdResult> solveForTargetsQ(CdSolver &solver, CdConfig base,
                                       std::vector<size_t> targets);

} // namespace apollo

#endif // APOLLO_ML_SOLVER_PATH_HH
