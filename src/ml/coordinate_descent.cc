#include "ml/coordinate_descent.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace apollo {

size_t
CdResult::nonzeros() const
{
    size_t n = 0;
    for (float v : w)
        if (v != 0.0f)
            n++;
    return n;
}

std::vector<uint32_t>
CdResult::support() const
{
    std::vector<uint32_t> s;
    for (size_t j = 0; j < w.size(); ++j)
        if (w[j] != 0.0f)
            s.push_back(static_cast<uint32_t>(j));
    return s;
}

CdSolver::CdSolver(const FeatureView &X, std::span<const float> y)
    : X_(X), y_(y)
{
    APOLLO_REQUIRE(X.rows() == y.size(), "rows/labels mismatch");
    APOLLO_REQUIRE(X.rows() > 1, "need at least two samples");
    const size_t n = X.rows();
    const size_t m = X.cols();
    a_.resize(m);
    live_.reserve(m);
    for (size_t j = 0; j < m; ++j) {
        a_[j] = X.sumSquares(j) / static_cast<double>(n);
        if (a_[j] > 0.0)
            live_.push_back(static_cast<uint32_t>(j));
    }
    // std(y) scales the convergence tolerance.
    double mu = 0.0;
    for (float v : y)
        mu += v;
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (float v : y)
        var += (v - mu) * (v - mu);
    yStd_ = std::sqrt(var / static_cast<double>(n));
    if (yStd_ <= 0.0)
        yStd_ = 1.0;
}

double
CdSolver::lambdaMax() const
{
    const size_t n = X_.rows();
    double mu = 0.0;
    for (float v : y_)
        mu += v;
    mu /= static_cast<double>(n);

    std::vector<float> centered(n);
    for (size_t i = 0; i < n; ++i)
        centered[i] = static_cast<float>(y_[i] - mu);

    double best = 0.0;
    for (uint32_t j : live_)
        best = std::max(best,
                        std::abs(X_.dot(j, centered.data())) /
                            static_cast<double>(n));
    return best;
}

void
CdSolver::updateIntercept(std::vector<float> &r, double &intercept) const
{
    double mu = 0.0;
    for (float v : r)
        mu += v;
    mu /= static_cast<double>(r.size());
    intercept += mu;
    const auto muf = static_cast<float>(mu);
    for (float &v : r)
        v -= muf;
}

double
CdSolver::sweepOver(std::span<const uint32_t> cols, const CdConfig &cfg,
                    std::vector<float> &w, std::vector<float> &r) const
{
    const auto n = static_cast<double>(X_.rows());
    double max_delta = 0.0;
    for (uint32_t j : cols) {
        const double a = a_[j];
        const double w_old = w[j];
        const double rho = X_.dot(j, r.data()) / n + a * w_old;
        const double w_new = coordinateUpdate(rho, a, cfg.penalty);
        if (w_new != w_old) {
            X_.axpy(j, static_cast<float>(w_old - w_new), r.data());
            w[j] = static_cast<float>(w_new);
            max_delta = std::max(max_delta,
                                 std::abs(w_new - w_old) * std::sqrt(a));
        }
    }
    return max_delta;
}

CdResult
CdSolver::fit(const CdConfig &config, const CdResult *warm_start)
{
    const size_t n = X_.rows();
    const size_t m = X_.cols();

    CdResult res;
    res.w.assign(m, 0.0f);
    res.intercept = 0.0;
    if (warm_start) {
        APOLLO_REQUIRE(warm_start->w.size() == m,
                       "warm start arity mismatch");
        res.w = warm_start->w;
        res.intercept = warm_start->intercept;
    }

    // Residual r = y - X w - b.
    std::vector<float> r(y_.begin(), y_.end());
    if (res.intercept != 0.0) {
        const auto b = static_cast<float>(res.intercept);
        for (float &v : r)
            v -= b;
    }
    for (size_t j = 0; j < m; ++j)
        if (res.w[j] != 0.0f)
            X_.axpy(j, -res.w[j], r.data());

    const double tol_abs = config.tol * yStd_;
    uint32_t sweeps = 0;
    bool converged = false;

    // Working set: nonzero coordinates (plus whatever full sweeps add).
    std::vector<uint32_t> active;
    auto rebuild_active = [&] {
        active.clear();
        for (uint32_t j : live_)
            if (res.w[j] != 0.0f)
                active.push_back(j);
    };
    rebuild_active();

    while (sweeps < config.maxSweeps) {
        // Full sweep: KKT check + working-set expansion in one pass.
        if (config.fitIntercept)
            updateIntercept(r, res.intercept);
        const double full_delta = sweepOver(live_, config, res.w, r);
        sweeps++;
        rebuild_active();
        if (full_delta <= tol_abs) {
            converged = true;
            break;
        }

        // Inner iterations on the active set only.
        while (sweeps < config.maxSweeps) {
            if (config.fitIntercept)
                updateIntercept(r, res.intercept);
            const double delta = sweepOver(active, config, res.w, r);
            sweeps++;
            if (delta <= tol_abs)
                break;
        }
    }

    res.sweeps = sweeps;
    res.converged = converged;
    double sse = 0.0;
    for (float v : r)
        sse += static_cast<double>(v) * v;
    res.trainMse = sse / static_cast<double>(n);
    return res;
}

} // namespace apollo
