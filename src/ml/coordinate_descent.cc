#include "ml/coordinate_descent.hh"

#include <algorithm>
#include <cmath>

#include "ml/sharded_view.hh"
#include "obs/metrics.hh"
#include "util/bitvec_kernels.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

/** Below this many live columns, screening/parallel overheads exceed
 *  the sweep cost they save. */
constexpr size_t kScreenMinCols = 64;
constexpr size_t kParallelMinCols = 128;
/**
 * Batched gradient passes and coordinate sweeps release the pages of
 * the columns they touch in chunks (FeatureView::releaseColumns), so
 * a pass over an out-of-core view never accumulates the payload in
 * RAM. A chunk is cut when it reaches kReleaseChunkCols columns OR
 * when it spans more than kReleaseSpanBytes of the packed column
 * space — the span bound is what actually caps the transient
 * footprint: a fault on a cached file maps the whole containing
 * page-cache folio (megabytes on large-folio kernels), so the
 * resident spill between releases tracks the span the chunk's columns
 * cover, not their count. Resident views devirtualize releaseColumns
 * to a no-op and see only the loop restructuring.
 */
constexpr size_t kReleaseChunkCols = 2048;
constexpr uint64_t kReleaseSpanBytes = 4 * 1024 * 1024;

/** Packed bytes per column (ceil(rows/64) words of 8 bytes) — the
 *  layout both bit views serve. */
uint64_t
packedBytesPerCol(size_t rows)
{
    return ((rows + 63) / 64) * sizeof(uint64_t);
}

/** End of the adaptive release chunk starting at @p c0 (exclusive
 *  upper bound @p end): bounded in count and in spanned bytes. */
size_t
releaseChunkEnd(std::span<const uint32_t> cols, size_t c0, size_t end,
                uint64_t bytes_per_col)
{
    size_t c1 = c0 + 1;
    while (c1 < end && c1 - c0 < kReleaseChunkCols &&
           static_cast<uint64_t>(cols[c1] - cols[c0]) * bytes_per_col <
               kReleaseSpanBytes)
        ++c1;
    return c1;
}

/**
 * Relative slack applied to the Cauchy-Schwarz certification bound so
 * rounding in the cached gradients / norms can never certify a column
 * that a freshly computed gradient would flag. Orders of magnitude
 * above the actual double rounding error, orders below any useful
 * screening margin.
 */
constexpr double kBoundSlack = 1.0 + 1e-8;

} // namespace

size_t
CdResult::nonzeros() const
{
    size_t n = 0;
    for (float v : w)
        if (v != 0.0f)
            n++;
    return n;
}

std::vector<uint32_t>
CdResult::support() const
{
    std::vector<uint32_t> s;
    for (size_t j = 0; j < w.size(); ++j)
        if (w[j] != 0.0f)
            s.push_back(static_cast<uint32_t>(j));
    return s;
}

CdSolver::CdSolver(const FeatureView &X, std::span<const float> y)
    : CdSolver(X, y, Options())
{}

CdSolver::CdSolver(const FeatureView &X, std::span<const float> y,
                   Options options, SolverSeed seed)
    : CdSolver(X, y, options)
{
    const size_t m = X.cols();
    APOLLO_REQUIRE(seed.gradY.size() == m, "solver seed arity mismatch");
    APOLLO_REQUIRE(seed.lambdaMax >= 0.0,
                   "solver seed lacks lambdaMax");
    lambdaMax_ = seed.lambdaMax;
    // Install the seed as the anchored gradient cache at the centered
    // cold residual r = y - float(mean(y)) — the residual the first
    // fit screens at, now that fitImpl absorbs the mean before the
    // cold bootstrap. Each anchor holds the exact <x_j, r> with zero
    // accumulated mean shift and drift, mirroring the state
    // bootstrapGradCache() leaves behind. The first fit's intercept
    // update reproduces this exact residual (same double mean over the
    // same floats, same float subtraction), so advanceDriftAccount(r)
    // sees r == lastResidual_ and adds exactly zero, and every
    // subsequent certification bound matches the unseeded solver bit
    // for bit. The seed contract assumes fitIntercept (every path
    // driver fits one); a no-intercept fit would screen the raw
    // residual instead.
    cachedDot_ = std::move(seed.gradY);
    anchorMean_.assign(m, 0.0);
    anchorDrift_.assign(m, 0.0);
    meanAcc_ = 0.0;
    driftAcc_ = 0.0;
    pendingDrift_ = 0.0;
    const auto muf = static_cast<float>(yMean_);
    lastResidual_.resize(y.size());
    for (size_t i = 0; i < y.size(); ++i)
        lastResidual_[i] = y[i] - muf;
    gradCacheValid_ = true;
}

CdSolver::CdSolver(const FeatureView &X, std::span<const float> y,
                   Options options)
    : X_(X), y_(y), parallel_(options.parallel),
      pool_(options.pool ? options.pool : &ThreadPool::global())
{
    APOLLO_REQUIRE(X.rows() == y.size(), "rows/labels mismatch");
    APOLLO_REQUIRE(X.rows() > 1, "need at least two samples");
    const size_t n = X.rows();
    const size_t m = X.cols();

    a_.resize(m);
    xNorm_.resize(m);
    colSum_.resize(m);
    auto norms = [&](size_t begin, size_t end) {
        for (size_t j = begin; j < end; ++j) {
            const double ss = X.sumSquares(j);
            a_[j] = ss / static_cast<double>(n);
            xNorm_[j] = std::sqrt(ss);
            colSum_[j] = X.sum(j);
        }
    };
    if (parallel_ && m >= kParallelMinCols)
        pool_->parallelFor(m, norms);
    else
        norms(0, m);

    live_.reserve(m);
    for (size_t j = 0; j < m; ++j)
        if (a_[j] > 0.0)
            live_.push_back(static_cast<uint32_t>(j));

    // Label mean/std (std(y) scales the convergence tolerance) and the
    // centered copy every path driver needs.
    double mu = 0.0;
    for (float v : y)
        mu += v;
    mu /= static_cast<double>(n);
    yMean_ = mu;
    yCentered_.resize(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d = y[i] - mu;
        yCentered_[i] = static_cast<float>(d);
        var += d * d;
    }
    yStd_ = std::sqrt(var / static_cast<double>(n));
    if (yStd_ <= 0.0)
        yStd_ = 1.0;
}

void
CdSolver::columnGradients(std::span<const uint32_t> cols, const float *r,
                          double *out) const
{
    if (cols.empty())
        return;
    const uint64_t bpc = packedBytesPerCol(X_.rows());
    auto body = [&](size_t begin, size_t end) {
        // Chunked so out-of-core views can drop each chunk's pages as
        // soon as its dots are done; resident views see a no-op.
        size_t c = begin;
        while (c < end) {
            const size_t e = releaseChunkEnd(cols, c, end, bpc);
            const auto chunk = cols.subspan(c, e - c);
            X_.dotColumns(chunk, r, out + c);
            X_.releaseColumns(chunk);
            c = e;
        }
    };
    if (parallel_ && cols.size() >= kParallelMinCols)
        pool_->parallelFor(cols.size(), body);
    else
        body(0, cols.size());
}

void
CdSolver::columnGradientsFast(std::span<const uint32_t> cols,
                              const float *r, double *out) const
{
    if (cols.empty())
        return;
    const uint64_t bpc = packedBytesPerCol(X_.rows());
    auto body = [&](size_t begin, size_t end) {
        size_t c = begin;
        while (c < end) {
            const size_t e = releaseChunkEnd(cols, c, end, bpc);
            const auto chunk = cols.subspan(c, e - c);
            X_.dotColumnsFast(chunk, r, out + c);
            X_.releaseColumns(chunk);
            c = e;
        }
    };
    if (parallel_ && cols.size() >= kParallelMinCols)
        pool_->parallelFor(cols.size(), body);
    else
        body(0, cols.size());
}

void
CdSolver::bootstrapGradCache(const std::vector<float> &r)
{
    const size_t m = X_.cols();
    cachedDot_.assign(m, 0.0);
    anchorMean_.assign(m, 0.0);
    anchorDrift_.assign(m, 0.0);
    meanAcc_ = 0.0;
    driftAcc_ = 0.0;
    lastResidual_.assign(r.begin(), r.end());
    gradBuf_.resize(live_.size());
    columnGradients(live_, r.data(), gradBuf_.data());
    for (size_t k = 0; k < live_.size(); ++k)
        cachedDot_[live_[k]] = gradBuf_[k];
    pendingDrift_ = 0.0;
    gradCacheValid_ = true;
}

void
CdSolver::advanceDriftAccount(const std::vector<float> &r)
{
    const size_t n = r.size();
    double s1 = 0.0;
    double s2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d =
            static_cast<double>(r[i]) - lastResidual_[i];
        s1 += d;
        s2 += d * d;
    }
    const double mean = s1 / static_cast<double>(n);
    meanAcc_ += mean;
    driftAcc_ += std::sqrt(
        std::max(0.0, s2 - mean * mean * static_cast<double>(n)));
    pendingDrift_ = 0.0;
    lastResidual_.assign(r.begin(), r.end());
}

double
CdSolver::certBound(uint32_t j) const
{
    const double center =
        cachedDot_[j] + (meanAcc_ - anchorMean_[j]) * colSum_[j];
    return (std::abs(center) +
            xNorm_[j] * (driftAcc_ - anchorDrift_[j])) *
           kBoundSlack;
}

void
CdSolver::anchorColumns(std::span<const uint32_t> cols,
                        const double *dots, double extraDrift)
{
    const double anchor_drift = driftAcc_ - extraDrift;
    for (size_t k = 0; k < cols.size(); ++k) {
        const uint32_t j = cols[k];
        cachedDot_[j] = dots[k];
        anchorMean_[j] = meanAcc_;
        anchorDrift_[j] = anchor_drift;
    }
}

double
CdSolver::lambdaMax() const
{
    if (lambdaMax_ >= 0.0)
        return lambdaMax_;
    const auto n = static_cast<double>(X_.rows());
    std::vector<double> g(live_.size());
    columnGradients(live_, yCentered_.data(), g.data());
    double best = 0.0;
    for (double v : g)
        best = std::max(best, std::abs(v) / n);
    lambdaMax_ = best;
    return best;
}

void
CdSolver::updateIntercept(std::vector<float> &r, double &intercept)
{
    double mu = 0.0;
    for (float v : r)
        mu += v;
    mu /= static_cast<double>(r.size());
    intercept += mu;
    const auto muf = static_cast<float>(mu);
    for (float &v : r)
        v -= muf;
    pendingDrift_ +=
        std::abs(mu) * std::sqrt(static_cast<double>(r.size()));
}

template <typename View>
double
CdSolver::sweepOver(const View &X, std::span<const uint32_t> cols,
                    const CdConfig &cfg, std::vector<float> &w,
                    std::vector<float> &r)
{
    const auto n = static_cast<double>(X.rows());
    const bool anchor = gradCacheValid_;
    double max_delta = 0.0;
    // Chunked like the batched gradient passes: an out-of-core view
    // drops each chunk's pages once the sweep has moved past it, so a
    // sweep holds one chunk's span resident instead of its column
    // set's — whose page union across a whole lambda path is the
    // entire payload. Even the small active-set sweeps release: with
    // folio-granular faulting, a handful of support columns scattered
    // over a paper-scale matrix can otherwise pin hundreds of
    // megabytes. Refaults come from the page cache and are cheap next
    // to the sweep's own arithmetic. Resident views devirtualize
    // releaseColumns to the no-op.
    const uint64_t bpc = packedBytesPerCol(X.rows());
    size_t c0 = 0;
    while (c0 < cols.size()) {
        const size_t c1 = releaseChunkEnd(cols, c0, cols.size(), bpc);
        const auto chunk = cols.subspan(c0, c1 - c0);
        for (uint32_t j : chunk) {
            const double a = a_[j];
            const double w_old = w[j];
            const double rho = X.dot(j, r.data()) / n + a * w_old;
            if (anchor) {
                // Recycle this exact dot as column j's new anchor; the
                // movement between the last accounting event and this
                // moment is over-covered by pendingDrift_.
                cachedDot_[j] = (rho - a * w_old) * n;
                anchorMean_[j] = meanAcc_;
                anchorDrift_[j] = driftAcc_ - pendingDrift_;
            }
            const double w_new = coordinateUpdate(rho, a, cfg.penalty);
            if (w_new != w_old) {
                X.axpy(j, static_cast<float>(w_old - w_new), r.data());
                w[j] = static_cast<float>(w_new);
                pendingDrift_ += std::abs(w_new - w_old) * xNorm_[j];
                max_delta =
                    std::max(max_delta,
                             std::abs(w_new - w_old) * std::sqrt(a));
            }
        }
        X.releaseColumns(chunk);
        c0 = c1;
    }
    return max_delta;
}

template <typename View>
CdResult
CdSolver::fitImpl(const View &X, const CdConfig &config,
                  const CdResult *warm_start)
{
    const size_t n = X.rows();
    const size_t m = X.cols();

    CdResult res;
    res.w.assign(m, 0.0f);
    res.intercept = 0.0;
    if (warm_start) {
        APOLLO_REQUIRE(warm_start->w.size() == m,
                       "warm start arity mismatch");
        res.w = warm_start->w;
        res.intercept = warm_start->intercept;
    }

    // Residual r = y - X w - b.
    std::vector<float> r(y_.begin(), y_.end());
    if (res.intercept != 0.0) {
        const auto b = static_cast<float>(res.intercept);
        for (float &v : r)
            v -= b;
    }
    // Warm-start reconstruction releases the support columns it
    // touches in span-bounded chunks, like every other pass: a
    // support scattered over an out-of-core payload would otherwise
    // pin one page-cache folio per column for the rest of the fit.
    exact_.clear();
    const uint64_t warm_bpc = packedBytesPerCol(n);
    for (size_t j = 0; j < m; ++j) {
        if (res.w[j] == 0.0f)
            continue;
        X.axpy(j, -res.w[j], r.data());
        exact_.push_back(static_cast<uint32_t>(j));
        if (exact_.size() >= kReleaseChunkCols ||
            static_cast<uint64_t>(j - exact_.front()) * warm_bpc >=
                kReleaseSpanBytes) {
            X.releaseColumns(exact_);
            exact_.clear();
        }
    }
    X.releaseColumns(exact_);

    const auto &pen = config.penalty;
    const auto nD = static_cast<double>(n);

    // Absorb the residual mean BEFORE screening. The strong rule's
    // reference gradients (lambdaMax and the per-point path residuals)
    // are all intercept-absorbed quantities; screening the raw
    // residual instead would inflate every |<x_j, r>| by
    // ~mean(r) * popcount(j), which for mean-heavy labels (power
    // traces sit far above zero) clears the threshold for every
    // column and silently degrades the strong set to "all of them".
    // Centering first makes the cold-start screen an actual
    // correlation prefilter — the property the out-of-core path's RSS
    // bound rests on (docs/INTERNALS.md §13).
    if (config.fitIntercept)
        updateIntercept(r, res.intercept);

    // Strong-rule screening: keep warm-start nonzeros plus columns
    // whose gradient at the warm start may clear 2*lambda - lambdaRef.
    // Gradients come from the per-column anchored cache via certBound(),
    // so a fit pays no upfront gradient pass at all (beyond the one-time
    // bootstrap): admission errs on the side of the strong set exactly
    // as the strong rule itself does, and the KKT pass below keeps the
    // result exact either way.
    std::vector<uint32_t> strong;
    std::vector<uint32_t> rest; // live columns excluded from sweeps
    const bool screenable =
        config.screen && pen.lambda > 0.0 &&
        (pen.kind == PenaltyKind::Lasso || pen.kind == PenaltyKind::Mcp) &&
        live_.size() >= kScreenMinCols;
    uint32_t kkt_dots = 0;
    if (screenable) {
        const double ref = config.screenLambdaRef > 0.0
                               ? config.screenLambdaRef
                               : lambdaMax();
        const double thresh = (2.0 * pen.lambda - ref) * nD;
        if (thresh > 0.0) {
            if (!gradCacheValid_) {
                bootstrapGradCache(r);
                kkt_dots += static_cast<uint32_t>(live_.size());
            } else {
                advanceDriftAccount(r);
            }
            for (uint32_t j : live_) {
                if (res.w[j] != 0.0f || certBound(j) >= thresh)
                    strong.push_back(j);
                else
                    rest.push_back(j);
            }
        }
    }
    if (rest.empty())
        strong = live_;

    const double tol_abs = config.tol * yStd_;
    uint32_t sweeps = 0;
    bool converged = false;
    uint32_t kkt_passes = 0;

    // Working set: nonzero coordinates within the strong set.
    std::vector<uint32_t> active;
    auto rebuild_active = [&] {
        active.clear();
        for (uint32_t j : strong)
            if (res.w[j] != 0.0f)
                active.push_back(j);
    };

    std::vector<uint32_t> violators;
    std::vector<uint32_t> still_rejected;
    std::vector<uint32_t> need; // rejected columns requiring exact dots
    uint32_t readmitted = 0;
    for (;;) {
        converged = false;
        rebuild_active();
        while (sweeps < config.maxSweeps) {
            // Full sweep over the strong set: KKT check within the set
            // + working-set expansion in one pass.
            if (config.fitIntercept)
                updateIntercept(r, res.intercept);
            // Fresh accounting event per full sweep: replaces the
            // pending per-update triangle bound with the actual
            // residual distance (which benefits from cancellation), so
            // the anchors recycled from this sweep's dots stay tight.
            if (gradCacheValid_)
                advanceDriftAccount(r);
            const double full_delta =
                sweepOver(X, strong, config, res.w, r);
            sweeps++;
            rebuild_active();
            if (full_delta <= tol_abs) {
                converged = true;
                break;
            }

            // Inner iterations on the active set only.
            while (sweeps < config.maxSweeps) {
                if (config.fitIntercept)
                    updateIntercept(r, res.intercept);
                const double delta =
                    sweepOver(X, active, config, res.w, r);
                sweeps++;
                if (delta <= tol_abs)
                    break;
            }
        }
        if (rest.empty())
            break;

        // KKT verification over the screened-out columns: any column
        // the penalty would move off zero was wrongly rejected — admit
        // it and re-solve. A rejected column whose certified bound
        // cannot reach lambda*N provably satisfies the KKT conditions
        // without a dot product (for Lasso/MCP at w_j = 0 the update is
        // zero iff |<x_j, r>| <= lambda*N); exact gradients are computed
        // only for the columns the bound cannot certify, and each exact
        // dot re-anchors its column so the next pass certifies it from
        // a fresh baseline.
        kkt_passes++;
        advanceDriftAccount(r);
        const double lambda_n = pen.lambda * nD;
        need.clear();
        for (uint32_t j : rest)
            if (certBound(j) > lambda_n)
                need.push_back(j);
        if (!need.empty()) {
            gradBuf_.resize(need.size());
            columnGradientsFast(need, r.data(), gradBuf_.data());
            kkt_dots += static_cast<uint32_t>(need.size());
            // The fast pass accumulates in float; its error is within
            // err_unit * xNorm_[j]. Results inside that band of the
            // decision threshold are recomputed exactly, so the
            // violator test below is as exact as a full double pass.
            double rnorm2 = 0.0;
            for (float v : r)
                rnorm2 += static_cast<double>(v) * v;
            const double err_unit =
                bitkernels::kDotFastRelErr * std::sqrt(rnorm2);
            // The exact recomputes refault pages the fast pass just
            // released; drop them again in chunks (ascending — a
            // subsequence of `need`) so borderline columns and their
            // fault-around spill don't accrete across the pass.
            exact_.clear();
            const uint64_t bpc = packedBytesPerCol(n);
            for (size_t k = 0; k < need.size(); ++k) {
                const uint32_t j = need[k];
                if (std::abs(std::abs(gradBuf_[k]) - lambda_n) <=
                    err_unit * xNorm_[j]) {
                    gradBuf_[k] = X_.dot(j, r.data());
                    exact_.push_back(j);
                    if (exact_.size() >= kReleaseChunkCols ||
                        static_cast<uint64_t>(j - exact_.front()) *
                                bpc >=
                            kReleaseSpanBytes) {
                        X_.releaseColumns(exact_);
                        exact_.clear();
                    }
                }
            }
            X_.releaseColumns(exact_);
            anchorColumns(need, gradBuf_.data(), err_unit);
        }
        violators.clear();
        still_rejected.clear();
        {
            size_t t = 0; // `need` is an in-order subsequence of `rest`
            for (uint32_t j : rest) {
                if (t < need.size() && need[t] == j) {
                    if (coordinateUpdate(gradBuf_[t] / nD, a_[j], pen) !=
                        0.0)
                        violators.push_back(j);
                    else
                        still_rejected.push_back(j);
                    t++;
                } else {
                    still_rejected.push_back(j);
                }
            }
        }
        if (violators.empty())
            break;
        readmitted += static_cast<uint32_t>(violators.size());
        strong.insert(strong.end(), violators.begin(), violators.end());
        std::sort(strong.begin(), strong.end());
        rest.swap(still_rejected);
        if (sweeps >= config.maxSweeps)
            break; // sweep budget exhausted; report non-convergence
    }

    res.sweeps = sweeps;
    res.converged = converged;
    res.kktPasses = kkt_passes;
    res.kktDots = kkt_dots;
    res.screenedOut = static_cast<uint32_t>(live_.size() - strong.size());
    res.strongSize = static_cast<uint32_t>(strong.size());
    APOLLO_COUNT("apollo.solver.fits", 1);
    APOLLO_COUNT("apollo.solver.sweeps", sweeps);
    APOLLO_COUNT("apollo.solver.kkt_passes", kkt_passes);
    APOLLO_COUNT("apollo.solver.kkt_dots", kkt_dots);
    APOLLO_COUNT("apollo.solver.kkt_violations_readmitted", readmitted);
    APOLLO_COUNT("apollo.solver.screened_out", res.screenedOut);
    if (APOLLO_OBS_ON() && !live_.empty())
        APOLLO_OBSERVE("apollo.solver.screen_drop_rate",
                       static_cast<double>(res.screenedOut) /
                           static_cast<double>(live_.size()),
                       ::apollo::obs::ratioBounds());
    double sse = 0.0;
    for (float v : r)
        sse += static_cast<double>(v) * v;
    res.trainMse = sse / static_cast<double>(n);
    return res;
}

CdResult
CdSolver::fit(const CdConfig &config, const CdResult *warm_start)
{
    // Dispatch once per fit to a sweep loop instantiated on the
    // concrete (final) view type, so the per-coordinate dot/axpy calls
    // devirtualize. Unknown view types take the generic virtual path.
    if (const auto *v = dynamic_cast<const BitFeatureView *>(&X_))
        return fitImpl(*v, config, warm_start);
    if (const auto *v = dynamic_cast<const ShardedFeatureView *>(&X_))
        return fitImpl(*v, config, warm_start);
    if (const auto *v = dynamic_cast<const CountFeatureView *>(&X_))
        return fitImpl(*v, config, warm_start);
    if (const auto *v = dynamic_cast<const DenseFeatureView *>(&X_))
        return fitImpl(*v, config, warm_start);
    return fitImpl(X_, config, warm_start);
}

} // namespace apollo
