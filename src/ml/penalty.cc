#include "ml/penalty.hh"

#include "util/logging.hh"

namespace apollo {

double
penaltyValue(double w, const PenaltyConfig &cfg)
{
    const double aw = std::abs(w);
    double p = 0.5 * cfg.lambda2 * w * w;
    switch (cfg.kind) {
      case PenaltyKind::None:
        return 0.0;
      case PenaltyKind::Ridge:
        return p;
      case PenaltyKind::Lasso:
        return p + cfg.lambda * aw;
      case PenaltyKind::Mcp: {
        // Eq. (6).
        if (aw <= cfg.gamma * cfg.lambda)
            return p + cfg.lambda * aw - w * w / (2.0 * cfg.gamma);
        return p + 0.5 * cfg.gamma * cfg.lambda * cfg.lambda;
      }
    }
    return p;
}

double
penaltyDerivativeMagnitude(double w, const PenaltyConfig &cfg)
{
    const double aw = std::abs(w);
    switch (cfg.kind) {
      case PenaltyKind::None:
      case PenaltyKind::Ridge:
        return cfg.lambda2 * aw;
      case PenaltyKind::Lasso:
        return cfg.lambda + cfg.lambda2 * aw;
      case PenaltyKind::Mcp:
        // Eq. (7): large weights are not shrunk at all.
        if (aw <= cfg.gamma * cfg.lambda)
            return cfg.lambda - aw / cfg.gamma + cfg.lambda2 * aw;
        return cfg.lambda2 * aw;
    }
    return 0.0;
}

double
coordinateUpdate(double rho, double a, const PenaltyConfig &cfg)
{
    APOLLO_ASSERT(a > 0.0, "zero-norm column reached the solver");
    double w = 0.0;
    switch (cfg.kind) {
      case PenaltyKind::None:
        w = rho / (a + 1e-12);
        break;
      case PenaltyKind::Ridge:
        w = rho / (a + cfg.lambda2);
        break;
      case PenaltyKind::Lasso:
        w = softThreshold(rho, cfg.lambda) / (a + cfg.lambda2);
        break;
      case PenaltyKind::Mcp: {
        // The concave region needs a - 1/gamma > 0 for a unique interior
        // minimizer; for low-rate columns (small a) raise gamma locally.
        const double gamma = std::max(cfg.gamma, 1.5 / a);
        if (std::abs(rho) <= gamma * cfg.lambda * (a + cfg.lambda2)) {
            w = softThreshold(rho, cfg.lambda) /
                (a + cfg.lambda2 - 1.0 / gamma);
        } else {
            w = rho / (a + cfg.lambda2);
        }
        break;
      }
    }
    if (cfg.nonneg && w < 0.0)
        w = 0.0;
    return w;
}

} // namespace apollo
