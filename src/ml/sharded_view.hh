/**
 * @file
 * ShardedFeatureView: the out-of-core FeatureView behind paper-scale
 * proxy selection (docs/INTERNALS.md §13). Columns live in a
 * MappedShardSet (K memory-mapped APSH shard files) instead of a
 * resident BitColumnMatrix; the view serves the exact same packed
 * words through the exact same bitkernels, so CdSolver produces
 * bit-identical weights at any shard count and thread count — the
 * determinism contract is "same algorithm, same bytes, same kernels",
 * not a re-derivation.
 *
 * The solver's construction-time streaming passes over all M columns
 * (column norms, lambdaMax, gradient-cache bootstrap) would each fault
 * the whole file set through the page cache. screen() fuses them into
 * ONE per-shard pass — per column: zero-tail validation, popcount,
 * exact <x_j, y - float(mean(y))> (the centered cold residual the
 * solver screens at) and <x_j, y - mean(y)> (the lambdaMax recipe)
 * via bitkernels::dotWords —
 * and drops each shard's pages (madvise DONTNEED) before moving on,
 * so peak RSS tracks one shard plus the dense vectors, never N x M.
 * The harvested stats seed CdSolver (SolverSeed) with the identical
 * doubles its own passes would have produced, and give the per-shard
 * admission counts for the apollo.solver.shard.* counters. After the
 * screen only the strong-rule survivors are ever touched per sweep, so
 * cold columns stay on disk; the anchored KKT certification bounds
 * re-screen the rejected columns without faulting them back in unless
 * a bound actually fails.
 */

#ifndef APOLLO_ML_SHARDED_VIEW_HH
#define APOLLO_ML_SHARDED_VIEW_HH

#include <span>
#include <vector>

#include "ml/feature_view.hh"
#include "trace/shard_store.hh"
#include "util/bitvec_kernels.hh"
#include "util/status.hh"

namespace apollo {

class ThreadPool;

/** Per-shard results of the fused screen pass. */
struct ShardScreenStats
{
    /** max_j |<x_j, y - mean(y)>| / N over live columns — identical
     *  to CdSolver::lambdaMax() on the same data. */
    double lambdaMax = 0.0;
    /** Columns scanned per shard (== shard size). */
    std::vector<uint64_t> colsScanned;
    /** Payload bytes streamed through the page cache. */
    uint64_t bytesStreamed = 0;

    /**
     * Columns per shard whose first-path-point strong-rule bound
     * admits them: |<x_j, y - float(mean(y))>| * slack >=
     * (2 * factor - 1) * lambdaMax * N, the exact admission test
     * CdSolver applies at the first lambda of a geometric path
     * (lambda = factor * lambdaMax screened against lambdaRef =
     * lambdaMax, at the centered cold residual its first intercept
     * update leaves). Diagnostic — the solver re-applies the rule
     * itself; these counts feed the apollo.solver.shard.* counters.
     */
    std::vector<uint64_t> admittedAtFirstPoint(double lambda_factor) const;

    // Internal to admittedAtFirstPoint / SolverSeed assembly.
    std::vector<double> gradY; ///< exact <x_j, y - float(mean(y))>
    std::vector<uint64_t> popcount; ///< per column
    std::vector<uint64_t> firstCol; ///< shard k owns [firstCol[k], ..)
    size_t rows = 0;
};

/**
 * FeatureView over a MappedShardSet. `final` so the solver's templated
 * sweep devirtualizes the kernel calls, exactly like BitFeatureView.
 * screen() must run before handing the view to CdSolver (the solver
 * reads sum()/sumSquares() from the cached popcounts).
 */
class ShardedFeatureView final : public FeatureView
{
  public:
    struct Options
    {
        bool parallel = true;
        ThreadPool *pool = nullptr; ///< nullptr = ThreadPool::global()
    };

    explicit ShardedFeatureView(const MappedShardSet &set);
    ShardedFeatureView(const MappedShardSet &set, Options options);

    /**
     * Fused per-shard streaming pass (see file comment). Validates the
     * zero-tail kernel contract on the untrusted mapped payload as it
     * scans. Deterministic at any thread count: every per-column
     * output depends only on that column's words and y.
     */
    Status screen(std::span<const float> y);

    bool screened() const { return !stats_.popcount.empty(); }
    const ShardScreenStats &stats() const { return stats_; }
    const MappedShardSet &shards() const { return set_; }

    // FeatureView interface -------------------------------------------------
    size_t rows() const override { return set_.rows(); }
    size_t cols() const override { return set_.cols(); }

    double
    dot(size_t col, const float *v) const override
    {
        return bitkernels::dotWords(set_.colWords(col),
                                    set_.wordsPerCol(), set_.rows(), v);
    }

    void
    axpy(size_t col, float delta, float *v) const override
    {
        bitkernels::axpyWords(set_.colWords(col), set_.wordsPerCol(),
                              set_.rows(), delta, v);
    }

    void
    dotColumns(std::span<const uint32_t> cols, const float *v,
               double *out) const override
    {
        for (size_t k = 0; k < cols.size(); ++k)
            out[k] = dot(cols[k], v);
    }

    void
    dotColumnsFast(std::span<const uint32_t> cols, const float *v,
                   double *out) const override
    {
        for (size_t k = 0; k < cols.size(); ++k)
            out[k] = bitkernels::dotWordsFast(set_.colWords(cols[k]),
                                              set_.wordsPerCol(),
                                              set_.rows(), v);
    }

    /**
     * Drop the backing pages of @p cols (madvise DONTNEED), coalescing
     * ascending runs into per-shard ranges. Advice granularity is whole
     * pages clamped to the shard mapping, so a release may also evict
     * boundary pages of neighboring columns — they refault from the
     * page cache on next touch; no data is lost and no arithmetic
     * changes. The solver's chunked KKT/bootstrap gradient passes call
     * this after each chunk so cold columns never pile up resident.
     */
    void releaseColumns(std::span<const uint32_t> cols) const override;

    double
    sumSquares(size_t col) const override
    {
        // Binary column: sum of squares == popcount (cached by
        // screen(), same integer BitFeatureView::colPopcount yields).
        return static_cast<double>(stats_.popcount[col]);
    }

    double
    sum(size_t col) const override
    {
        return static_cast<double>(stats_.popcount[col]);
    }

    double
    value(size_t row, size_t col) const override
    {
        return set_.get(row, col) ? 1.0 : 0.0;
    }

  private:
    const MappedShardSet &set_;
    bool parallel_ = true;
    ThreadPool *pool_ = nullptr;
    ShardScreenStats stats_;
};

} // namespace apollo

#endif // APOLLO_ML_SHARDED_VIEW_HH
