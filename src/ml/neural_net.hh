/**
 * @file
 * PowerNet: a from-scratch nonlinear power model over *all* flip-flop
 * toggles — the PRIMAL-class baseline [79]. PRIMAL's best model is a
 * CNN over register toggles; we substitute a two-hidden-layer MLP
 * trained with Adam (documented in DESIGN.md §2): like the CNN it is a
 * dense nonlinear model over every flip-flop, accurate but requiring
 * the full signal vector at inference — which is exactly why it is
 * orders of magnitude more expensive than APOLLO at design time and a
 * non-starter as a runtime OPM.
 *
 * Training is deterministic: batches are sharded into fixed chunks whose
 * gradients are reduced in chunk order.
 */

#ifndef APOLLO_ML_NEURAL_NET_HH
#define APOLLO_ML_NEURAL_NET_HH

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hh"

namespace apollo {

/** Trainer hyper-parameters. */
struct NeuralNetConfig
{
    uint32_t hidden1 = 64;
    uint32_t hidden2 = 32;
    uint32_t epochs = 10;
    uint32_t batchSize = 128;
    float learningRate = 3e-3f;
    float l2 = 5e-4f;
    uint64_t seed = 0x27e7ULL;
};

/** The fitted network. */
class PowerNet
{
  public:
    /**
     * Train on dataset @p X (cycles x all-signals) restricted to input
     * columns @p input_ids (the flip-flop signals), labels @p y.
     */
    void train(const BitColumnMatrix &X,
               std::span<const uint32_t> input_ids,
               std::span<const float> y,
               const NeuralNetConfig &config = NeuralNetConfig{});

    /** Predict power for every row of @p X (same column space). */
    std::vector<float> predict(const BitColumnMatrix &X) const;

    size_t inputCount() const { return inputIds_.size(); }
    const std::vector<uint32_t> &inputIds() const { return inputIds_; }

    /** Approximate multiply-accumulate count per inference cycle. */
    double macsPerCycle() const;

  private:
    /** Forward pass; returns standardized prediction. */
    float forward(const std::vector<uint32_t> &active, float *h1,
                  float *h2) const;

    std::vector<uint32_t> inputIds_;
    uint32_t h1_ = 0;
    uint32_t h2_ = 0;
    std::vector<float> w1_; ///< F x h1 (row per input)
    std::vector<float> b1_;
    std::vector<float> w2_; ///< h1 x h2
    std::vector<float> b2_;
    std::vector<float> w3_; ///< h2
    float b3_ = 0.f;
    float yMean_ = 0.f;
    float yStd_ = 1.f;
};

} // namespace apollo

#endif // APOLLO_ML_NEURAL_NET_HH
