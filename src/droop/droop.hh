/**
 * @file
 * Runtime proactive Ldi/dt analysis (§8.2). The differencing operator
 * Delta-I in discrete time stands in for di/dt; the per-cycle OPM
 * output, differenced, predicts current transients: cycles with a large
 * positive Delta-I precede voltage droops, large negative Delta-I
 * precede overshoots. We reproduce the Fig. 17 correlation/quadrant
 * analysis and demonstrate an OPM-guided adaptive-clocking mitigation
 * loop on the RLC PDN model.
 */

#ifndef APOLLO_DROOP_DROOP_HH
#define APOLLO_DROOP_DROOP_HH

#include <cstdint>
#include <span>
#include <vector>

#include "power/pdn_model.hh"

namespace apollo {

/** Per-cycle current demand from per-cycle power at nominal voltage. */
std::vector<double> currentFromPower(std::span<const float> power,
                                     double vdd);

/** Delta-I series (first sample is 0). */
std::vector<double> deltaI(std::span<const double> current);

/**
 * Value at quantile @p q of @p values (nearest-rank on the sorted copy,
 * index clamped to the last element). @p q must be in [0, 1] and
 * @p values non-empty.
 */
double percentileCut(std::span<const double> values, double q);

/** Fig. 17 statistics. */
struct DidtAnalysis
{
    /** Pearson correlation between truth and estimated Delta-I. */
    double pearsonDeltaI = 0.0;
    /** Sign-quadrant sample counts (truth sign x estimate sign). */
    uint64_t quadPosPos = 0;
    uint64_t quadPosNeg = 0;
    uint64_t quadNegPos = 0;
    uint64_t quadNegNeg = 0;
    /** Pearson restricted to deep events (|truth dI| above the given
     *  percentile) — the droop/overshoot corners of Fig. 17. */
    double deepEventPearson = 0.0;
    /** Fraction of deep positive truth events whose estimate is also in
     *  the top decile (droop precursors caught by the OPM). */
    double deepDroopRecall = 0.0;
};

/** Compare ground-truth vs OPM-estimated per-cycle power traces. */
DidtAnalysis analyzeDidt(std::span<const float> truth_power,
                         std::span<const float> est_power, double vdd,
                         double deep_percentile = 0.95);

/** Droop simulation outcome. */
struct DroopSimResult
{
    double minVoltage = 0.0;
    double maxOvershoot = 0.0;
    /** Cycles below the droop threshold. */
    uint64_t droopCycles = 0;
    /** Cycles the mitigation was engaged (0 without mitigation). */
    uint64_t throttledCycles = 0;
    std::vector<double> voltage;
};

/** Run the PDN over a power trace without mitigation. */
DroopSimResult simulateDroop(std::span<const float> power,
                             const PdnParams &pdn_params,
                             double droop_threshold);

/**
 * OPM-guided proactive mitigation: when the *estimated* Delta-I exceeds
 * @p trigger_delta, current demand is stretched (adaptive clocking
 * slows issue) by @p stretch_factor for @p stretch_cycles cycles.
 */
DroopSimResult simulateWithMitigation(std::span<const float> truth_power,
                                      std::span<const float> est_power,
                                      const PdnParams &pdn_params,
                                      double droop_threshold,
                                      double trigger_delta,
                                      double stretch_factor,
                                      uint32_t stretch_cycles);

} // namespace apollo

#endif // APOLLO_DROOP_DROOP_HH
