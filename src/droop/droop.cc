#include "droop/droop.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace apollo {

std::vector<double>
currentFromPower(std::span<const float> power, double vdd)
{
    APOLLO_REQUIRE(vdd > 0.0, "vdd must be positive");
    std::vector<double> current(power.size());
    for (size_t i = 0; i < power.size(); ++i)
        current[i] = power[i] / vdd;
    return current;
}

std::vector<double>
deltaI(std::span<const double> current)
{
    std::vector<double> di(current.size(), 0.0);
    for (size_t i = 1; i < current.size(); ++i)
        di[i] = current[i] - current[i - 1];
    return di;
}

namespace {

double
pearsonD(std::span<const double> a, std::span<const double> b)
{
    const size_t n = a.size();
    double ma = 0.0;
    double mb = 0.0;
    for (size_t i = 0; i < n; ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= static_cast<double>(n);
    mb /= static_cast<double>(n);
    double cov = 0.0;
    double va = 0.0;
    double vb = 0.0;
    for (size_t i = 0; i < n; ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    if (va <= 0.0 || vb <= 0.0)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

} // namespace

double
percentileCut(std::span<const double> values, double q)
{
    APOLLO_REQUIRE(!values.empty(), "percentile cut of empty series");
    APOLLO_REQUIRE(q >= 0.0 && q <= 1.0,
                   "percentile must be in [0, 1], got ", q);
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const size_t index = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q * static_cast<double>(sorted.size() - 1)));
    return sorted[index];
}

DidtAnalysis
analyzeDidt(std::span<const float> truth_power,
            std::span<const float> est_power, double vdd,
            double deep_percentile)
{
    APOLLO_REQUIRE(truth_power.size() == est_power.size(),
                   "trace arity mismatch");
    // n == 3 would feed pearsonD two-sample inputs below (subspan(1)
    // of a 3-entry delta series), which are always degenerate.
    APOLLO_REQUIRE(truth_power.size() >= 4,
                   "dI/dt analysis needs at least 4 samples, got ",
                   truth_power.size());
    APOLLO_REQUIRE(deep_percentile >= 0.0 && deep_percentile <= 1.0,
                   "deep_percentile must be in [0, 1], got ",
                   deep_percentile);
    const std::vector<double> i_truth =
        currentFromPower(truth_power, vdd);
    const std::vector<double> i_est = currentFromPower(est_power, vdd);
    const std::vector<double> di_truth = deltaI(i_truth);
    const std::vector<double> di_est = deltaI(i_est);

    DidtAnalysis out;
    out.pearsonDeltaI =
        pearsonD(std::span(di_truth).subspan(1),
                 std::span(di_est).subspan(1));

    for (size_t i = 1; i < di_truth.size(); ++i) {
        const bool tp = di_truth[i] >= 0.0;
        const bool ep = di_est[i] >= 0.0;
        if (tp && ep)
            out.quadPosPos++;
        else if (tp && !ep)
            out.quadPosNeg++;
        else if (!tp && ep)
            out.quadNegPos++;
        else
            out.quadNegNeg++;
    }

    // Deep events: |truth dI| above the requested percentile.
    std::vector<double> mags;
    mags.reserve(di_truth.size() - 1);
    for (size_t i = 1; i < di_truth.size(); ++i)
        mags.push_back(std::abs(di_truth[i]));
    const double cut = percentileCut(mags, deep_percentile);

    std::vector<double> deep_truth;
    std::vector<double> deep_est;
    for (size_t i = 1; i < di_truth.size(); ++i) {
        if (std::abs(di_truth[i]) >= cut) {
            deep_truth.push_back(di_truth[i]);
            deep_est.push_back(di_est[i]);
        }
    }
    if (deep_truth.size() > 2)
        out.deepEventPearson = pearsonD(deep_truth, deep_est);

    // Droop precursors: top-decile positive truth steps; does the OPM
    // estimate also land in its own top decile?
    const double est_hi =
        percentileCut(std::span(di_est).subspan(1), 0.90);
    const double truth_hi =
        percentileCut(std::span(di_truth).subspan(1), 0.90);

    uint64_t deep_pos = 0;
    uint64_t caught = 0;
    for (size_t i = 1; i < di_truth.size(); ++i) {
        if (di_truth[i] >= truth_hi) {
            deep_pos++;
            if (di_est[i] >= est_hi)
                caught++;
        }
    }
    out.deepDroopRecall =
        deep_pos ? static_cast<double>(caught) / deep_pos : 0.0;
    return out;
}

DroopSimResult
simulateDroop(std::span<const float> power, const PdnParams &pdn_params,
              double droop_threshold)
{
    PdnModel pdn(pdn_params);
    const std::vector<double> current =
        currentFromPower(power, pdn_params.vdd);

    DroopSimResult res;
    res.voltage.reserve(current.size());
    res.minVoltage = pdn_params.vdd;
    for (double i : current) {
        const double v = pdn.step(i);
        res.voltage.push_back(v);
        res.minVoltage = std::min(res.minVoltage, v);
        res.maxOvershoot =
            std::max(res.maxOvershoot, v - pdn_params.vdd);
        if (v < droop_threshold)
            res.droopCycles++;
    }
    return res;
}

DroopSimResult
simulateWithMitigation(std::span<const float> truth_power,
                       std::span<const float> est_power,
                       const PdnParams &pdn_params,
                       double droop_threshold, double trigger_delta,
                       double stretch_factor, uint32_t stretch_cycles)
{
    APOLLO_REQUIRE(truth_power.size() == est_power.size(),
                   "trace arity mismatch");
    APOLLO_REQUIRE(stretch_factor > 0.0 && stretch_factor <= 1.0,
                   "stretch factor must be in (0, 1]");
    // A non-positive trigger fires on every flat or falling sample and
    // a zero stretch window never throttles despite the trigger —
    // both silently defeat the mitigation, so reject them like
    // analyzeDidt rejects out-of-range percentiles.
    APOLLO_REQUIRE(trigger_delta > 0.0,
                   "trigger delta must be positive, got ", trigger_delta);
    APOLLO_REQUIRE(stretch_cycles > 0,
                   "stretch window must be at least 1 cycle");
    PdnModel pdn(pdn_params);

    DroopSimResult res;
    res.voltage.reserve(truth_power.size());
    res.minVoltage = pdn_params.vdd;

    double prev_est_current = 0.0;
    uint32_t stretch_left = 0;
    double effective_prev = 0.0;

    for (size_t i = 0; i < truth_power.size(); ++i) {
        // The OPM watches its own estimate (2-cycle latency folded into
        // the trigger by reacting to the previous sample's delta).
        const double est_current = est_power[i] / pdn_params.vdd;
        const double est_delta =
            i ? est_current - prev_est_current : 0.0;
        prev_est_current = est_current;
        if (est_delta > trigger_delta)
            stretch_left = stretch_cycles;

        double current = truth_power[i] / pdn_params.vdd;
        if (stretch_left > 0) {
            // Adaptive clocking: the stretched clock spreads the same
            // work over more time, capping the current ramp.
            const double cap =
                effective_prev + trigger_delta * stretch_factor;
            current = std::min(current, cap);
            stretch_left--;
            res.throttledCycles++;
        }
        effective_prev = current;

        const double v = pdn.step(current);
        res.voltage.push_back(v);
        res.minVoltage = std::min(res.minVoltage, v);
        res.maxOvershoot =
            std::max(res.maxOvershoot, v - pdn_params.vdd);
        if (v < droop_threshold)
            res.droopCycles++;
    }
    return res;
}

} // namespace apollo
