#include "opm/opm_hardware.hh"

#include <set>

#include "util/logging.hh"

namespace apollo {

namespace {

uint32_t
ceilLog2(uint64_t v)
{
    uint32_t bits = 0;
    while ((1ULL << bits) < v)
        bits++;
    return bits;
}

} // namespace

OpmHardwareReport
analyzeOpmHardware(const Netlist &netlist, const QuantizedModel &model,
                   uint32_t T, double avg_proxy_toggle_rate,
                   const GateCosts &costs)
{
    const size_t q = model.proxyCount();
    APOLLO_REQUIRE(q >= 1, "empty model");
    const uint32_t b = model.bits;
    OpmHardwareReport rep;

    // ---- Interface (Fig. 8 "interface") ----
    std::set<int32_t> buses_seen;
    for (uint32_t sig_id : model.proxyIds) {
        const Signal &sig = netlist.signal(sig_id);
        switch (sig.kind) {
          case SignalKind::GatedClock:
            // Trace the enable instead: one latch FF + pipeline FF.
            rep.interfaceGE += 2 * costs.ff;
            break;
          case SignalKind::BusBit:
            // capture FF + XOR per bit; bits of an already-monitored
            // bus also feed its OR tree.
            rep.interfaceGE += 2 * costs.ff + costs.xor2;
            if (!buses_seen.insert(sig.busId).second)
                rep.interfaceGE += costs.or2;
            break;
          default:
            // capture FF + XOR toggle detector + pipeline FF.
            rep.interfaceGE += 2 * costs.ff + costs.xor2;
            break;
        }
    }

    // ---- Power computation ----
    rep.computeGE += static_cast<double>(q) * b * costs.and2;
    // Balanced adder tree: level l has ceil(q / 2^l) adders of width
    // (b + l) bits.
    const uint32_t levels = ceilLog2(q);
    size_t nodes = q;
    for (uint32_t l = 1; l <= levels; ++l) {
        nodes = (nodes + 1) / 2;
        rep.computeGE += static_cast<double>(nodes) * (b + l) *
                         costs.fullAdder;
    }

    // ---- T-cycle average ----
    const uint32_t accum_bits = b + ceilLog2(q) + ceilLog2(T) + 1;
    rep.accumGE = accum_bits * (costs.ff + costs.fullAdder) +
                  ceilLog2(std::max<uint32_t>(T, 2)) *
                      (costs.ff + 0.5 * costs.fullAdder);

    // ---- Routing ----
    rep.routingGE = static_cast<double>(q) *
                    costs.routeBuffersPerProxy * costs.buffer;

    rep.totalGE = rep.interfaceGE + rep.computeGE + rep.accumGE +
                  rep.routingGE;
    rep.areaOverhead = rep.totalGE / netlist.nominalCoreGates();

    // ---- Power ----
    const double core_power = netlist.nominalCorePower();
    const double logic_power =
        (rep.interfaceGE + rep.computeGE + rep.accumGE) *
        costs.opmActivity;
    const double routing_power = rep.routingGE *
                                 avg_proxy_toggle_rate *
                                 costs.routeCapFactor;
    rep.logicPowerOverhead = logic_power / core_power;
    rep.routingPowerOverhead = routing_power / core_power;
    rep.totalPowerOverhead =
        rep.logicPowerOverhead + rep.routingPowerOverhead;
    return rep;
}

} // namespace apollo
