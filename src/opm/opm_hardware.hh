/**
 * @file
 * Structural gate-level cost model for the APOLLO OPM (§6, §7.5),
 * standing in for Catapult HLS + Design Compiler synthesis.
 *
 * Area is accounted in NAND2 gate equivalents (GE) per component of
 * Fig. 8:
 *  - interface: per-proxy capture FF + XOR toggle detector + pipeline
 *    FF (gated-clock proxies need only an enable latch; extra bits of
 *    an already-monitored bus add an OR2 each),
 *  - power computation: B AND2 per proxy plus a balanced adder tree
 *    whose level-l adders are (B + l) bits wide,
 *  - T-cycle average: a (B + ceil(log Q) + ceil(log T))-bit accumulator
 *    register + adder and a log2(T)-bit wrap counter,
 *  - routing: repeater buffers for hauling Q proxies to the centralized
 *    OPM placement.
 *
 * Overhead percentages are taken against the netlist's nominal
 * full-design gate count / power (see DESIGN.md §2 scaling policy).
 */

#ifndef APOLLO_OPM_OPM_HARDWARE_HH
#define APOLLO_OPM_OPM_HARDWARE_HH

#include <cstdint>

#include "opm/quantize.hh"
#include "rtl/netlist.hh"

namespace apollo {

/** Cell costs in NAND2 equivalents (7nm-flavoured defaults). */
struct GateCosts
{
    double ff = 6.0;
    double xor2 = 2.5;
    double and2 = 1.5;
    double or2 = 1.5;
    double fullAdder = 5.0;
    double buffer = 1.2;
    /** Average repeaters per proxy route to the centralized OPM. */
    double routeBuffersPerProxy = 6.0;
    /** OPM logic switching-activity factor (per-GE power weight). */
    double opmActivity = 0.20;
    /** Route power weight: wire+buffer cap per toggle, per buffer GE. */
    double routeCapFactor = 9.0;
};

/** Area/power report for one OPM configuration. */
struct OpmHardwareReport
{
    double interfaceGE = 0.0;
    double computeGE = 0.0;
    double accumGE = 0.0;
    double routingGE = 0.0;
    double totalGE = 0.0;

    /** totalGE / nominal core gates. */
    double areaOverhead = 0.0;
    /** OPM logic power / nominal core power. */
    double logicPowerOverhead = 0.0;
    /** Proxy routing power / nominal core power. */
    double routingPowerOverhead = 0.0;
    double totalPowerOverhead = 0.0;

    uint32_t latencyCycles = 2;
    /** Table-3 accounting. */
    uint32_t counters = 1;
    uint32_t multipliers = 0;
};

/**
 * Analyze one OPM configuration.
 * @param avg_proxy_toggle_rate measured mean toggle rate of the chosen
 *        proxies (drives routing power).
 */
OpmHardwareReport analyzeOpmHardware(const Netlist &netlist,
                                     const QuantizedModel &model,
                                     uint32_t T,
                                     double avg_proxy_toggle_rate,
                                     const GateCosts &costs = GateCosts{});

} // namespace apollo

#endif // APOLLO_OPM_OPM_HARDWARE_HH
