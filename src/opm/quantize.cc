#include "opm/quantize.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace apollo {

ApolloModel
QuantizedModel::toFloatModel() const
{
    ApolloModel model;
    model.proxyIds = proxyIds;
    model.intercept = dequantize(qintercept);
    model.weights.resize(qweights.size());
    for (size_t q = 0; q < qweights.size(); ++q)
        model.weights[q] = static_cast<float>(qweights[q] * scale);
    return model;
}

QuantizedModel
quantizeModel(const ApolloModel &model, uint32_t bits)
{
    APOLLO_REQUIRE(bits >= 2 && bits <= 24, "bits out of range");
    QuantizedModel qm;
    qm.proxyIds = model.proxyIds;
    qm.bits = bits;

    double max_abs = 0.0;
    for (float w : model.weights)
        max_abs = std::max(max_abs, std::abs(static_cast<double>(w)));
    if (max_abs == 0.0)
        max_abs = 1.0;
    const auto qmax = static_cast<double>((1 << (bits - 1)) - 1);
    qm.scale = max_abs / qmax;

    qm.qweights.resize(model.weights.size());
    for (size_t q = 0; q < model.weights.size(); ++q) {
        const auto v = static_cast<int32_t>(
            std::lround(model.weights[q] / qm.scale));
        qm.qweights[q] = std::clamp<int32_t>(
            v, -static_cast<int32_t>(qmax), static_cast<int32_t>(qmax));
    }
    qm.qintercept =
        static_cast<int64_t>(std::llround(model.intercept / qm.scale));
    return qm;
}

} // namespace apollo
