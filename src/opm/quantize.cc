#include "opm/quantize.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace apollo {

ApolloModel
QuantizedModel::toFloatModel() const
{
    ApolloModel model;
    model.proxyIds = proxyIds;
    model.intercept = dequantize(qintercept);
    model.weights.resize(qweights.size());
    for (size_t q = 0; q < qweights.size(); ++q)
        model.weights[q] = static_cast<float>(qweights[q] * scale);
    return model;
}

StatusOr<QuantizedModel>
tryQuantizeModel(const ApolloModel &model, uint32_t bits)
{
    if (bits < 2 || bits > 24)
        return Status::invalidArgument("bits must be in [2, 24], got ",
                                       bits);
    QuantizedModel qm;
    qm.proxyIds = model.proxyIds;
    qm.bits = bits;

    double max_abs = 0.0;
    for (float w : model.weights)
        max_abs = std::max(max_abs, std::abs(static_cast<double>(w)));
    if (max_abs == 0.0)
        max_abs = 1.0;
    const auto qmax = static_cast<double>((1 << (bits - 1)) - 1);
    qm.scale = max_abs / qmax;

    qm.qweights.resize(model.weights.size());
    double pos_sum = 0.0;
    double neg_sum = 0.0;
    for (size_t q = 0; q < model.weights.size(); ++q) {
        const auto v = static_cast<int32_t>(
            std::lround(model.weights[q] / qm.scale));
        qm.qweights[q] = std::clamp<int32_t>(
            v, -static_cast<int32_t>(qmax), static_cast<int32_t>(qmax));
        if (qm.qweights[q] > 0)
            pos_sum += qm.qweights[q];
        else
            neg_sum += qm.qweights[q];
    }

    // Width check on the worst-case per-cycle sum *including* the
    // quantized intercept, in double before the llround: llround of a
    // value outside int64 range is undefined, and even an in-range
    // result would silently wrap the fixed-point datapath that
    // opm_hardware/hls_emitter size from these fields.
    const double q_intercept = model.intercept / qm.scale;
    const double worst = std::max(std::abs(q_intercept + pos_sum),
                                  std::abs(q_intercept + neg_sum));
    const double limit =
        static_cast<double>(1LL << kOpmMaxCycleSumBits);
    if (!(worst < limit))
        return Status::outOfRange(
            "quantized intercept ", model.intercept, " at scale ",
            qm.scale, " yields a worst-case cycle sum of ", worst,
            " units, exceeding the ", kOpmMaxCycleSumBits,
            "-bit OPM cycle-sum budget");
    qm.qintercept =
        static_cast<int64_t>(std::llround(q_intercept));
    APOLLO_COUNT("apollo.opm.quantizations", 1);
    return qm;
}

QuantizedModel
quantizeModel(const ApolloModel &model, uint32_t bits)
{
    return tryQuantizeModel(model, bits).value();
}

} // namespace apollo
