/**
 * @file
 * Hardware-cost accounting for prior OPM architectures (Table 3): most
 * prior runtime monitors need a counter and a multiplier per proxy
 * (their models consume multi-cycle toggle *counts*), while APOLLO's
 * per-cycle binary inputs need only AND gates, one shared accumulator,
 * and zero multipliers.
 */

#ifndef APOLLO_OPM_BASELINE_OPMS_HH
#define APOLLO_OPM_BASELINE_OPMS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace apollo {

/** One row of the Table-3 comparison. */
struct OpmCostRow
{
    std::string method;
    std::string counters;    ///< symbolic count, e.g. "Q"
    std::string multipliers; ///< symbolic count, e.g. "Q^2"
    uint64_t counterUnits = 0;
    uint64_t multiplierUnits = 0;
    /** Estimated arithmetic area in NAND2 equivalents. */
    double arithmeticGE = 0.0;
};

/**
 * Build the Table-3 comparison for a design with @p m signals, @p q
 * selected proxies, @p bits-bit weights, and window @p T.
 */
std::vector<OpmCostRow> opmCostComparison(size_t m, size_t q,
                                          uint32_t bits, uint32_t T);

} // namespace apollo

#endif // APOLLO_OPM_BASELINE_OPMS_HH
