#include "opm/baseline_opms.hh"

namespace apollo {

namespace {

uint32_t
ceilLog2(uint64_t v)
{
    uint32_t bits = 0;
    while ((1ULL << bits) < v)
        bits++;
    return bits;
}

constexpr double ffGE = 6.0;
constexpr double faGE = 5.0;

/** A toggle counter wide enough for a T-cycle window. */
double
counterGE(uint32_t T)
{
    const uint32_t width = ceilLog2(T) + 1;
    return width * (ffGE + 0.5 * faGE);
}

/** A BxB array multiplier. */
double
multiplierGE(uint32_t bits)
{
    return static_cast<double>(bits) * bits * faGE;
}

} // namespace

std::vector<OpmCostRow>
opmCostComparison(size_t m, size_t q, uint32_t bits, uint32_t T)
{
    std::vector<OpmCostRow> rows;
    const double ctr = counterGE(T);
    const double mul = multiplierGE(bits);

    // [75] Yang et al.: SVD-based instrumentation, multiplier work
    // proportional to the full signal count.
    rows.push_back({"Yang [75]", "0", "~M", 0, m,
                    static_cast<double>(m) * mul});
    // Simmani [40]: Q counters; ~Q^2 polynomial terms each needing a
    // multiply.
    rows.push_back({"Simmani [40]", "Q", "~Q^2",
                    static_cast<uint64_t>(q),
                    static_cast<uint64_t>(q) * q,
                    q * ctr + static_cast<double>(q) * q * mul});
    // Counter-per-proxy monitors [23, 51, 80, 81]: Q counters, Q
    // multipliers.
    rows.push_back({"Counter OPMs [23,51,80,81]", "Q", "Q",
                    static_cast<uint64_t>(q),
                    static_cast<uint64_t>(q), q * (ctr + mul)});
    // Pagliari [53]: Q counters, one time-shared multiplier.
    rows.push_back({"Pagliari [53]", "Q", "1",
                    static_cast<uint64_t>(q), 1, q * ctr + mul});
    // APOLLO: a single T-cycle accumulator, zero multipliers (per-cycle
    // and multi-cycle models share the structure, Eq. 9).
    rows.push_back({"APOLLO (per-cycle)", "1", "0", 1, 0, ctr});
    rows.push_back({"APOLLO (multi-cycle)", "1", "0", 1, 0, ctr});
    return rows;
}

} // namespace apollo
