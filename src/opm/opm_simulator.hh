/**
 * @file
 * Bit-true simulator of the APOLLO OPM hardware (Fig. 8): per cycle the
 * quantized weights are AND-gated by the proxy toggle bits and summed
 * (bit width B + ceil(log2 Q)); a T-cycle accumulator (width
 * B + ceil(log2 Q) + ceil(log2 T)) adds cycle sums and, every T cycles,
 * emits the window average by dropping the low log2(T) bits — T is a
 * power of two so the division is a shift. Output latency is two
 * cycles (registered proxy inputs + pipelined sum), matching §7.5.
 */

#ifndef APOLLO_OPM_OPM_SIMULATOR_HH
#define APOLLO_OPM_OPM_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "opm/quantize.hh"
#include "util/bitvec.hh"

namespace apollo {

/** Hardware-accurate OPM evaluation. */
class OpmSimulator
{
  public:
    /**
     * @param model the quantized model
     * @param T     measurement window in cycles; must be a power of two
     */
    OpmSimulator(const QuantizedModel &model, uint32_t T);

    /** One output sample (valid every T cycles). */
    struct Output
    {
        bool valid = false;
        int64_t raw = 0;   ///< accumulator >> log2(T)
        double power = 0.0;
    };

    /**
     * Advance one cycle. @p proxy_bits holds Q packed toggle bits
     * (bit q = proxy q toggled this cycle).
     */
    Output step(const uint64_t *proxy_bits);

    /**
     * The combinational "power computation" stage alone: the AND-gated
     * weighted sum of one cycle's proxy bits (plus the quantized
     * intercept), without touching accumulator state. Pure function;
     * the streaming engine evaluates it for whole chunks in parallel
     * and feeds the sums through stepSum() in cycle order, which is
     * bit-identical to calling step() cycle by cycle because integer
     * accumulation is exact.
     */
    int64_t cycleSum(const uint64_t *proxy_bits) const;

    /**
     * The sequential accumulate-then-shift stage: add one cycle's
     * precomputed sum, enforce the declared widths, and emit the
     * window average every T cycles. step() == stepSum(cycleSum()).
     */
    Output stepSum(int64_t cycle_sum);

    /**
     * Advance @p len cycles at once with their precomputed total
     * @p segment_sum — the bit-parallel replay stage: integer addition
     * is exact in any order, so one segment add equals len stepSum()
     * calls bit for bit. The segment must not straddle a window
     * boundary (phase() + len <= T); chunk code splits chunks at
     * window boundaries, which is how windows straddling chunk edges
     * carry across calls. The accumulator-width check (the PR 5
     * overflow budget) still runs per segment; the per-cycle sums
     * folded into @p segment_sum are bounded by the same worst-case
     * analysis the constructor sized the widths with, so skipping the
     * per-cycle asserts cannot hide an overflow.
     */
    Output stepSegment(int64_t segment_sum, uint32_t len);

    void reset();

    /** Cycles into the current window (0 <= phase < T). */
    uint32_t phase() const { return phase_; }

    /** Bit width of the per-cycle weighted sum. */
    uint32_t cycleSumBits() const { return cycleSumBits_; }
    /** Bit width of the T-cycle accumulator. */
    uint32_t accumulatorBits() const { return accumBits_; }
    /** Fixed pipeline latency in cycles. */
    static constexpr uint32_t latencyCycles = 2;

    uint32_t windowCycles() const { return T_; }

    /**
     * Run over a proxy-toggle matrix (columns ordered like the model's
     * proxyIds); returns one power value per complete T-window.
     */
    std::vector<float> simulate(const BitColumnMatrix &Xq);

  private:
    QuantizedModel model_;
    uint32_t T_;
    uint32_t shift_;
    uint32_t cycleSumBits_;
    uint32_t accumBits_;
    int64_t accumulator_ = 0;
    uint32_t phase_ = 0;
};

} // namespace apollo

#endif // APOLLO_OPM_OPM_SIMULATOR_HH
