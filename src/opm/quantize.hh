/**
 * @file
 * Weight quantization for the on-chip power meter (§6): weights become
 * B-bit fixed-point integers (signed, symmetric scale); the intercept
 * is quantized on the same scale and added once per cycle.
 */

#ifndef APOLLO_OPM_QUANTIZE_HH
#define APOLLO_OPM_QUANTIZE_HH

#include <cstdint>
#include <vector>

#include "core/apollo_model.hh"
#include "util/status.hh"

namespace apollo {

/**
 * Width budget for the OPM's per-cycle sum *including* the quantized
 * intercept. OpmSimulator/opm_hardware/hls_emitter size the accumulator
 * as cycleSumBits + log2(T) and require the result to fit 62 bits;
 * capping the cycle sum at 47 magnitude bits leaves room for every
 * supported window (T up to 2^15) without silent wraparound in the
 * emitted fixed-point datapath.
 */
constexpr uint32_t kOpmMaxCycleSumBits = 47;

/** A B-bit fixed-point APOLLO model. */
struct QuantizedModel
{
    std::vector<uint32_t> proxyIds;
    /** Signed B-bit weights: |qw| <= 2^(B-1) - 1. */
    std::vector<int32_t> qweights;
    /** Quantized intercept on the same scale. */
    int64_t qintercept = 0;
    uint32_t bits = 10;
    /** Dequantization factor: w ~= qw * scale. */
    double scale = 1.0;

    size_t proxyCount() const { return proxyIds.size(); }

    /** Convert an integer accumulator value back to power units. */
    double dequantize(int64_t acc) const { return acc * scale; }

    /** Float model reconstructed from the quantized weights. */
    ApolloModel toFloatModel() const;
};

/**
 * Quantize @p model to @p bits-bit weights. Data errors return a
 * Status: InvalidArgument when bits is outside [2, 24], OutOfRange
 * when the quantized intercept pushes the worst-case cycle sum past
 * kOpmMaxCycleSumBits (the overflow is checked in double *before* the
 * llround, so a huge intercept/scale ratio can never wrap int64).
 *
 * Dequantization error contract (checked by the opm.quantize_roundtrip
 * differential oracle): a T-window OPM output differs from the
 * toFloatModel() Eq. (9) float inference by less than one scale unit
 * (the >> log2(T) truncation) plus float rounding of the weight sums.
 */
StatusOr<QuantizedModel> tryQuantizeModel(const ApolloModel &model,
                                          uint32_t bits);

/** tryQuantizeModel that throws FatalError on invalid input. */
QuantizedModel quantizeModel(const ApolloModel &model, uint32_t bits);

} // namespace apollo

#endif // APOLLO_OPM_QUANTIZE_HH
