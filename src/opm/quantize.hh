/**
 * @file
 * Weight quantization for the on-chip power meter (§6): weights become
 * B-bit fixed-point integers (signed, symmetric scale); the intercept
 * is quantized on the same scale and added once per cycle.
 */

#ifndef APOLLO_OPM_QUANTIZE_HH
#define APOLLO_OPM_QUANTIZE_HH

#include <cstdint>
#include <vector>

#include "core/apollo_model.hh"

namespace apollo {

/** A B-bit fixed-point APOLLO model. */
struct QuantizedModel
{
    std::vector<uint32_t> proxyIds;
    /** Signed B-bit weights: |qw| <= 2^(B-1) - 1. */
    std::vector<int32_t> qweights;
    /** Quantized intercept on the same scale. */
    int64_t qintercept = 0;
    uint32_t bits = 10;
    /** Dequantization factor: w ~= qw * scale. */
    double scale = 1.0;

    size_t proxyCount() const { return proxyIds.size(); }

    /** Convert an integer accumulator value back to power units. */
    double dequantize(int64_t acc) const { return acc * scale; }

    /** Float model reconstructed from the quantized weights. */
    ApolloModel toFloatModel() const;
};

/** Quantize @p model to @p bits-bit weights. */
QuantizedModel quantizeModel(const ApolloModel &model, uint32_t bits);

} // namespace apollo

#endif // APOLLO_OPM_QUANTIZE_HH
