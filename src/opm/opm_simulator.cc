#include "opm/opm_simulator.hh"

#include <bit>
#include <cmath>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace apollo {

namespace {

uint32_t
ceilLog2(uint64_t v)
{
    uint32_t bits = 0;
    while ((1ULL << bits) < v)
        bits++;
    return bits;
}

} // namespace

OpmSimulator::OpmSimulator(const QuantizedModel &model, uint32_t T)
    : model_(model), T_(T)
{
    APOLLO_REQUIRE(T >= 1 && std::has_single_bit(T),
                   "T must be a power of two");
    APOLLO_REQUIRE(!model.proxyIds.empty(), "empty model");
    shift_ = ceilLog2(T);
    // Full-precision widths per §6: B + ceil(log Q) (+1 sign margin),
    // then + ceil(log T) for the accumulator. The §6 formula assumes
    // the intercept is on the weight scale; a quantized intercept of
    // larger magnitude (|b| >> max|w| after scaling) shifts the whole
    // cycle-sum range, so the width must also cover the exact
    // worst-case sum including qintercept.
    int64_t min_sum = model.qintercept;
    int64_t max_sum = model.qintercept;
    for (int32_t qw : model.qweights) {
        if (qw > 0)
            max_sum += qw;
        else
            min_sum += qw;
    }
    const uint64_t max_abs =
        std::max(static_cast<uint64_t>(max_sum < 0 ? -max_sum : max_sum),
                 static_cast<uint64_t>(min_sum < 0 ? -min_sum : min_sum));
    cycleSumBits_ =
        std::max(model.bits + ceilLog2(model.proxyCount()) + 1,
                 static_cast<uint32_t>(std::bit_width(max_abs)));
    accumBits_ = cycleSumBits_ + shift_;
    APOLLO_REQUIRE(accumBits_ <= 62,
                   "accumulator width exceeds 62 bits for this "
                   "model/T combination");
}

void
OpmSimulator::reset()
{
    accumulator_ = 0;
    phase_ = 0;
}

int64_t
OpmSimulator::cycleSum(const uint64_t *proxy_bits) const
{
    // "Power computation": AND-gated weight accumulation — no
    // multipliers, the weight either enters the adder tree or not.
    int64_t cycle_sum = model_.qintercept;
    const size_t q_count = model_.proxyCount();
    for (size_t w = 0; w * 64 < q_count; ++w) {
        uint64_t bits = proxy_bits[w];
        while (bits) {
            const size_t q =
                w * 64 + static_cast<size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            if (q >= q_count)
                break;
            cycle_sum += model_.qweights[q];
        }
    }
    return cycle_sum;
}

OpmSimulator::Output
OpmSimulator::step(const uint64_t *proxy_bits)
{
    return stepSum(cycleSum(proxy_bits));
}

OpmSimulator::Output
OpmSimulator::stepSum(int64_t cycle_sum)
{
    // The declared cycle-sum width must never overflow.
    const int64_t cycle_limit = 1LL << cycleSumBits_;
    APOLLO_ASSERT(cycle_sum > -cycle_limit && cycle_sum < cycle_limit,
                  "cycle sum overflows declared width");

    // "T-cycle average": accumulate, emit every T cycles with the
    // divide realized by dropping the low log2(T) bits.
    accumulator_ += cycle_sum;
    const int64_t accum_limit = 1LL << accumBits_;
    APOLLO_ASSERT(accumulator_ > -accum_limit &&
                      accumulator_ < accum_limit,
                  "accumulator overflows declared width");
    phase_++;

    Output out;
    if (phase_ == T_) {
        out.valid = true;
        out.raw = accumulator_ >> shift_;
        out.power = model_.dequantize(out.raw);
        accumulator_ = 0;
        phase_ = 0;
    }
    return out;
}

OpmSimulator::Output
OpmSimulator::stepSegment(int64_t segment_sum, uint32_t len)
{
    APOLLO_ASSERT(len >= 1 && phase_ + len <= T_,
                  "segment must stay within one window");

    // One add for the whole segment: exact, so bit-identical to len
    // stepSum() calls. The accumulator width still covers the partial
    // window (|acc after k <= T cycles| <= T * max|cycle sum|, the
    // bound the constructor sized accumBits_ with).
    accumulator_ += segment_sum;
    const int64_t accum_limit = 1LL << accumBits_;
    APOLLO_ASSERT(accumulator_ > -accum_limit &&
                      accumulator_ < accum_limit,
                  "accumulator overflows declared width");
    phase_ += len;

    Output out;
    if (phase_ == T_) {
        out.valid = true;
        out.raw = accumulator_ >> shift_;
        out.power = model_.dequantize(out.raw);
        accumulator_ = 0;
        phase_ = 0;
    }
    return out;
}

std::vector<float>
OpmSimulator::simulate(const BitColumnMatrix &Xq)
{
    APOLLO_REQUIRE(Xq.cols() == model_.proxyCount(),
                   "proxy matrix arity mismatch");
    reset();
    const size_t n = Xq.rows();
    const size_t words = (Xq.cols() + 63) / 64;
    std::vector<uint64_t> row_bits(words);

    std::vector<float> out;
    out.reserve(n / T_);
    for (size_t i = 0; i < n; ++i) {
        // Gather this cycle's proxy bits from the column-major matrix.
        std::fill(row_bits.begin(), row_bits.end(), 0);
        for (size_t q = 0; q < Xq.cols(); ++q)
            if (Xq.get(i, q))
                row_bits[q >> 6] |= 1ULL << (q & 63);
        const Output sample = step(row_bits.data());
        if (sample.valid)
            out.push_back(static_cast<float>(sample.power));
    }
    APOLLO_COUNT("apollo.opm.simulations", 1);
    APOLLO_COUNT("apollo.opm.cycles", n);
    APOLLO_COUNT("apollo.opm.windows", out.size());
    if (APOLLO_OBS_ON() && n > 0 && Xq.cols() > 0) {
        uint64_t ones = 0;
        for (size_t q = 0; q < Xq.cols(); ++q)
            ones += Xq.colPopcount(q);
        APOLLO_OBSERVE("apollo.opm.toggle_density",
                       static_cast<double>(ones) /
                           (static_cast<double>(n) *
                            static_cast<double>(Xq.cols())),
                       ::apollo::obs::ratioBounds());
    }
    return out;
}

} // namespace apollo
