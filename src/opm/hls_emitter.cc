#include "opm/hls_emitter.hh"

#include <bit>
#include <sstream>

#include "util/logging.hh"

namespace apollo {

namespace {

uint32_t
ceilLog2(uint64_t v)
{
    uint32_t bits = 0;
    while ((1ULL << bits) < v)
        bits++;
    return bits;
}

} // namespace

std::string
emitOpmHlsSource(const QuantizedModel &model, uint32_t T,
                 const std::string &unit_name)
{
    APOLLO_REQUIRE(std::has_single_bit(T), "T must be a power of two");
    const size_t q = model.proxyCount();
    const uint32_t b = model.bits;
    const uint32_t sum_bits = b + ceilLog2(q) + 1;
    const uint32_t acc_bits = sum_bits + ceilLog2(T);

    std::ostringstream os;
    os << "// Auto-generated APOLLO on-chip power meter.\n";
    os << "// Q=" << q << " proxies, B=" << b << "-bit weights, T=" << T
       << "-cycle window.\n";
    os << "// Cycle-sum width " << sum_bits << " bits; accumulator width "
       << acc_bits << " bits; latency 2 cycles.\n";
    os << "#include <cstdint>\n\n";
    os << "struct " << unit_name << "\n{\n";
    os << "    static constexpr unsigned kQ = " << q << ";\n";
    os << "    static constexpr unsigned kB = " << b << ";\n";
    os << "    static constexpr unsigned kT = " << T << ";\n";
    os << "    static constexpr unsigned kShift = " << ceilLog2(T)
       << ";\n\n";
    os << "    // B-bit weight ROM (one entry per proxy).\n";
    os << "    static constexpr int32_t kWeights[kQ] = {";
    for (size_t i = 0; i < q; ++i) {
        if (i % 8 == 0)
            os << "\n        ";
        os << model.qweights[i] << (i + 1 < q ? ", " : "");
    }
    os << "\n    };\n";
    os << "    static constexpr int64_t kIntercept = "
       << model.qintercept << ";\n\n";
    os << "    int64_t accumulator = 0;\n";
    os << "    unsigned phase = 0;\n";
    os << "    int64_t out = 0;\n";
    os << "    bool out_valid = false;\n\n";
    os << "    // One clock: toggles[q] is the registered XOR toggle bit\n";
    os << "    // of proxy q. AND-gated adds only -- no multipliers.\n";
    os << "    void\n";
    os << "    step(const bool toggles[kQ])\n";
    os << "    {\n";
    os << "        int64_t cycle_sum = kIntercept;\n";
    os << "        for (unsigned q = 0; q < kQ; ++q)\n";
    os << "            cycle_sum += toggles[q] ? kWeights[q] : 0;\n";
    os << "        accumulator += cycle_sum;\n";
    os << "        phase++;\n";
    os << "        out_valid = false;\n";
    os << "        if (phase == kT) {\n";
    os << "            out = accumulator >> kShift;\n";
    os << "            out_valid = true;\n";
    os << "            accumulator = 0;\n";
    os << "            phase = 0;\n";
    os << "        }\n";
    os << "    }\n";
    os << "};\n";
    return os.str();
}

} // namespace apollo
