/**
 * @file
 * HLS template emitter: generates the C++ source of a configured OPM
 * (the paper implements the OPM with generic C++ templates through
 * Catapult HLS, configurable in B, Q and T). The emitted unit is a
 * synthesizable-style step() kernel with the weight ROM baked in; it
 * mirrors OpmSimulator bit-for-bit.
 */

#ifndef APOLLO_OPM_HLS_EMITTER_HH
#define APOLLO_OPM_HLS_EMITTER_HH

#include <string>

#include "opm/quantize.hh"

namespace apollo {

/** Generate the OPM C++ source for @p model with window size @p T. */
std::string emitOpmHlsSource(const QuantizedModel &model, uint32_t T,
                             const std::string &unit_name = "apollo_opm");

} // namespace apollo

#endif // APOLLO_OPM_HLS_EMITTER_HH
