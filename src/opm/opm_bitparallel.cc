#include "opm/opm_bitparallel.hh"

#include "util/logging.hh"

namespace apollo {

void
opmSegmentSums(const QuantizedModel &model, uint32_t T, uint32_t phase0,
               const BitColumnMatrix &bits, size_t rows,
               const popkernels::Kernels &kernels,
               std::vector<int64_t> &seg_sums)
{
    APOLLO_ASSERT(T >= 1 && phase0 < T, "window phase out of range");
    // The word-level kernels count whole tail words, so the zero-tail
    // boundary of the matrix must be the row count being evaluated.
    APOLLO_ASSERT(rows == bits.rows(), "row count must match chunk");
    const size_t nseg = popkernels::windowSegments(rows, T, phase0);
    seg_sums.assign(nseg, 0);
    if (nseg == 0)
        return;

    // Per-column weighted popcount passes; each partial product is
    // bounded by the window worst case the OpmSimulator constructor
    // sized its accumulator with, so int64 accumulation cannot wrap.
    const size_t q = model.proxyCount();
    for (size_t c = 0; c < q; ++c) {
        const int64_t qw = model.qweights[c];
        if (qw != 0)
            kernels.accumWindowSums(bits.colWords(c), rows, T, phase0,
                                    qw, seg_sums.data());
    }

    // The intercept enters the adder tree every cycle.
    size_t a = 0;
    size_t s = 0;
    size_t b = rows < T - phase0 ? rows : T - phase0;
    while (a < rows) {
        seg_sums[s++] += static_cast<int64_t>(b - a) * model.qintercept;
        a = b;
        b = rows < a + T ? rows : a + T;
    }
}

} // namespace apollo
