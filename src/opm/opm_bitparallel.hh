/**
 * @file
 * Bit-parallel evaluation of the OPM adder tree over packed
 * column-major toggle words: instead of materializing one integer sum
 * per cycle, compute one weighted sum per T-cycle window segment
 * directly from the 64-cycle words via weighted popcounts
 * (util/popcnt_kernels.hh),
 *
 *   segSum(s) = len_s * qintercept
 *             + sum_c qweights[c] * popcount(column c, segment s),
 *
 * which equals the sum of OpmSimulator::cycleSum() over the segment's
 * cycles exactly (integer addition is order-independent), so replaying
 * the segments through OpmSimulator::stepSegment() is bit-identical to
 * the per-cycle path. Segments are aligned to the *stream's* window
 * grid: a chunk that starts phase0 cycles into a window contributes a
 * leading partial segment, and a window straddling the chunk's end is
 * carried to the next chunk by the simulator's accumulator.
 */

#ifndef APOLLO_OPM_OPM_BITPARALLEL_HH
#define APOLLO_OPM_OPM_BITPARALLEL_HH

#include <cstdint>
#include <vector>

#include "opm/quantize.hh"
#include "util/bitvec.hh"
#include "util/popcnt_kernels.hh"

namespace apollo {

/**
 * Fill @p seg_sums with the per-segment weighted sums of rows
 * [0, rows) of @p bits (resized to the segment count). @p phase0 is
 * the window phase of row 0 (must be < T); zero-weight columns are
 * skipped. @p rows must equal bits.rows(): the word-level kernels
 * count whole tail words and rely on the matrix's zero-tail contract
 * (bits past rows in each column's last word are zero).
 */
void opmSegmentSums(const QuantizedModel &model, uint32_t T,
                    uint32_t phase0, const BitColumnMatrix &bits,
                    size_t rows, const popkernels::Kernels &kernels,
                    std::vector<int64_t> &seg_sums);

} // namespace apollo

#endif // APOLLO_OPM_OPM_BITPARALLEL_HH
