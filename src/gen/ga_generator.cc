#include "gen/ga_generator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace apollo {

namespace {

/**
 * Instruction-generation policy. Register conventions:
 *  - x0..x27: general scalar data registers (ALU destinations)
 *  - x28, x29: walking pointers (only incremented, never clobbered)
 *  - x30: memory base (read-only), x31: loop counter (reserved)
 *  - v0..v15: vector data registers
 */
constexpr int maxDataReg = 27;

Instruction
randomInstruction(Xoshiro256StarStar &rng)
{
    using namespace asm_helpers;
    auto data_reg = [&] {
        return static_cast<int>(rng.nextBounded(maxDataReg + 1));
    };
    auto vec_reg = [&] {
        return static_cast<int>(rng.nextBounded(numVectorRegs));
    };
    auto ptr_reg = [&] { return 28 + static_cast<int>(rng.nextBounded(2)); };
    auto mem_off = [&] {
        return static_cast<int32_t>(8 * rng.nextBounded(512));
    };

    // Weighted opcode mix biased toward the units that dominate power.
    const double u = rng.nextDouble();
    if (u < 0.26) { // scalar ALU
        const int kind = static_cast<int>(rng.nextBounded(6));
        const int rd = data_reg(), rn = data_reg(), rm = data_reg();
        switch (kind) {
          case 0: return add(rd, rn, rm);
          case 1: return sub(rd, rn, rm);
          case 2: return and_(rd, rn, rm);
          case 3: return orr(rd, rn, rm);
          case 4: return eor(rd, rn, rm);
          default: return lsl(rd, rn, rm);
        }
    }
    if (u < 0.33) { // immediate ALU / pointer bumps
        if (rng.nextDouble() < 0.3) {
            const int p = ptr_reg();
            return addi(p, p, static_cast<int32_t>(8 * rng.nextBounded(16)));
        }
        return addi(data_reg(), data_reg(),
                    static_cast<int32_t>(rng.nextBounded(4096)));
    }
    if (u < 0.40) { // long-latency integer
        if (rng.nextDouble() < 0.85)
            return mul(data_reg(), data_reg(), data_reg());
        return div(data_reg(), data_reg(), data_reg());
    }
    if (u < 0.62) { // vector
        const int kind = static_cast<int>(rng.nextBounded(4));
        const int vd = vec_reg(), vn = vec_reg(), vm = vec_reg();
        switch (kind) {
          case 0: return vadd(vd, vn, vm);
          case 1: return vmul(vd, vn, vm);
          default: return vfma(vd, vn, vm);
        }
    }
    if (u < 0.80) { // scalar memory
        const double m = rng.nextDouble();
        if (m < 0.12) {
            // Pointer chase: dependent loads through random memory —
            // the lowest-power behaviour (core drains on every miss).
            const int p = ptr_reg();
            return ldr(p, p, static_cast<int32_t>(8 * rng.nextBounded(8)));
        }
        if (m < 0.55)
            return ldr(data_reg(), rng.nextDouble() < 0.7 ? 30 : ptr_reg(),
                       mem_off());
        if (m < 0.9)
            return str(data_reg(), rng.nextDouble() < 0.7 ? 30 : ptr_reg(),
                       mem_off());
        return prfm(30, mem_off());
    }
    if (u < 0.94) { // vector memory
        if (rng.nextDouble() < 0.6)
            return vldr(vec_reg(), 30, mem_off());
        return vstr(vec_reg(), 30, mem_off());
    }
    return nop();
}

} // namespace

GaGenerator::GaGenerator(const DatasetBuilder &builder,
                         const GaConfig &config)
    : builder_(builder), config_(config)
{
    APOLLO_REQUIRE(config.populationSize >= 4, "population too small");
    APOLLO_REQUIRE(config.elites < config.populationSize,
                   "elites must be < population");
}

std::vector<Instruction>
GaGenerator::randomBody(Xoshiro256StarStar &rng, uint32_t min_len,
                        uint32_t max_len)
{
    const uint32_t len = min_len +
        static_cast<uint32_t>(rng.nextBounded(max_len - min_len + 1));
    std::vector<Instruction> body;
    body.reserve(len);
    for (uint32_t i = 0; i < len; ++i)
        body.push_back(randomInstruction(rng));
    return body;
}

GaIndividual
GaGenerator::randomIndividual(Xoshiro256StarStar &rng,
                              uint32_t generation) const
{
    GaIndividual ind;
    ind.body = randomBody(rng, config_.bodyMinLen, config_.bodyMaxLen);
    ind.dataSeed = rng();
    ind.generation = generation;
    return ind;
}

Program
GaGenerator::toProgram(const GaIndividual &ind, const std::string &name,
                       int iterations)
{
    return Program::makeLoop(name, ind.body, iterations, ind.dataSeed);
}

void
GaGenerator::evaluate(GaIndividual &ind) const
{
    // Trip count sized so the loop comfortably outlives the cycle
    // budget (the simulation is capped at fitnessCycles).
    const int iters = std::clamp<int>(
        static_cast<int>(5 * (config_.fitnessCycles + 400) /
                         ind.body.size()),
        4, 8000);
    const Program prog = toProgram(ind, "ga", iters);
    ind.avgPower = builder_.averagePower(prog, config_.fitnessCycles,
                                         config_.fitnessSignalStride);
}

const GaIndividual &
GaGenerator::tournament(const std::vector<GaIndividual> &pop,
                        Xoshiro256StarStar &rng) const
{
    const GaIndividual *winner =
        &pop[rng.nextBounded(pop.size())];
    for (uint32_t t = 1; t < config_.tournamentSize; ++t) {
        const GaIndividual *challenger =
            &pop[rng.nextBounded(pop.size())];
        if (challenger->avgPower > winner->avgPower)
            winner = challenger;
    }
    return *winner;
}

void
GaGenerator::mutate(GaIndividual &ind, Xoshiro256StarStar &rng) const
{
    for (Instruction &inst : ind.body) {
        if (rng.nextDouble() < config_.mutationRate)
            inst = randomInstruction(rng);
    }
    if (rng.nextDouble() < config_.mutationRate && ind.body.size() > 2) {
        // Swap two instructions (scheduling mutation).
        const size_t a = rng.nextBounded(ind.body.size());
        const size_t b = rng.nextBounded(ind.body.size());
        std::swap(ind.body[a], ind.body[b]);
    }
    if (rng.nextDouble() < config_.mutationRate)
        ind.dataSeed = rng();
    if (rng.nextDouble() < 0.5 * config_.mutationRate) {
        // Grow or shrink by one instruction within bounds.
        if (rng.nextDouble() < 0.5 &&
            ind.body.size() < config_.bodyMaxLen) {
            ind.body.insert(
                ind.body.begin() +
                    static_cast<long>(rng.nextBounded(ind.body.size())),
                randomInstruction(rng));
        } else if (ind.body.size() > config_.bodyMinLen) {
            ind.body.erase(
                ind.body.begin() +
                static_cast<long>(rng.nextBounded(ind.body.size())));
        }
    }
}

void
GaGenerator::run()
{
    Xoshiro256StarStar rng(config_.seed);

    std::vector<GaIndividual> population;
    population.reserve(config_.populationSize);
    for (uint32_t i = 0; i < config_.populationSize; ++i)
        population.push_back(randomIndividual(rng, 0));

    for (uint32_t gen = 0; gen < config_.generations; ++gen) {
        for (GaIndividual &ind : population) {
            ind.generation = gen;
            evaluate(ind);
            all_.push_back(ind);
        }

        if (gen + 1 == config_.generations)
            break;

        // Elitism + tournament reproduction.
        std::vector<GaIndividual> sorted = population;
        std::sort(sorted.begin(), sorted.end(),
                  [](const GaIndividual &a, const GaIndividual &b) {
                      return a.avgPower > b.avgPower;
                  });

        std::vector<GaIndividual> next;
        next.reserve(config_.populationSize);
        for (uint32_t e = 0; e < config_.elites; ++e)
            next.push_back(sorted[e]);

        while (next.size() < config_.populationSize) {
            GaIndividual child = tournament(population, rng);
            if (rng.nextDouble() < config_.crossoverRate) {
                const GaIndividual &other = tournament(population, rng);
                // Single-point crossover on the bodies.
                const size_t cut_a =
                    1 + rng.nextBounded(child.body.size() - 1);
                const size_t cut_b =
                    1 + rng.nextBounded(other.body.size() - 1);
                std::vector<Instruction> merged(
                    child.body.begin(),
                    child.body.begin() + static_cast<long>(cut_a));
                merged.insert(merged.end(),
                              other.body.begin() +
                                  static_cast<long>(cut_b),
                              other.body.end());
                if (merged.size() > config_.bodyMaxLen)
                    merged.resize(config_.bodyMaxLen);
                if (merged.size() >= config_.bodyMinLen)
                    child.body = std::move(merged);
            }
            mutate(child, rng);
            next.push_back(std::move(child));
        }
        population = std::move(next);
    }
}

const GaIndividual &
GaGenerator::best() const
{
    APOLLO_REQUIRE(!all_.empty(), "run() first");
    const GaIndividual *best = &all_[0];
    for (const GaIndividual &ind : all_)
        if (ind.avgPower > best->avgPower)
            best = &ind;
    return *best;
}

double
GaGenerator::powerRangeRatio() const
{
    APOLLO_REQUIRE(!all_.empty(), "run() first");
    double lo = all_[0].avgPower;
    double hi = all_[0].avgPower;
    for (const GaIndividual &ind : all_) {
        lo = std::min(lo, ind.avgPower);
        hi = std::max(hi, ind.avgPower);
    }
    return lo > 0 ? hi / lo : 0.0;
}

std::vector<GaIndividual>
GaGenerator::selectTrainingSet(size_t count) const
{
    APOLLO_REQUIRE(!all_.empty(), "run() first");
    // Bucket individuals by power, then round-robin across buckets so
    // the selected subset covers the power range uniformly.
    const size_t n_bins = std::max<size_t>(8, count / 4);
    double lo = all_[0].avgPower, hi = all_[0].avgPower;
    for (const GaIndividual &ind : all_) {
        lo = std::min(lo, ind.avgPower);
        hi = std::max(hi, ind.avgPower);
    }
    const double width = std::max(1e-12, (hi - lo) / n_bins);

    std::vector<std::vector<const GaIndividual *>> bins(n_bins);
    for (const GaIndividual &ind : all_) {
        size_t b = static_cast<size_t>((ind.avgPower - lo) / width);
        b = std::min(b, n_bins - 1);
        bins[b].push_back(&ind);
    }

    std::vector<GaIndividual> selected;
    selected.reserve(count);
    size_t round = 0;
    while (selected.size() < count) {
        bool any = false;
        for (auto &bin : bins) {
            if (round < bin.size()) {
                selected.push_back(*bin[round]);
                any = true;
                if (selected.size() == count)
                    break;
            }
        }
        if (!any)
            break; // all bins exhausted
        round++;
    }
    return selected;
}

} // namespace apollo
