#include "gen/ga_generator.hh"

#include <algorithm>
#include <cmath>

#include "gen/fitness_eval.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace apollo {

namespace {

/**
 * Instruction-generation policy. Register conventions:
 *  - x0..x27: general scalar data registers (ALU destinations)
 *  - x28, x29: walking pointers (only incremented, never clobbered)
 *  - x30: memory base (read-only), x31: loop counter (reserved)
 *  - v0..v15: vector data registers
 */
constexpr int maxDataReg = 27;

Instruction
randomInstruction(Xoshiro256StarStar &rng)
{
    using namespace asm_helpers;
    auto data_reg = [&] {
        return static_cast<int>(rng.nextBounded(maxDataReg + 1));
    };
    auto vec_reg = [&] {
        return static_cast<int>(rng.nextBounded(numVectorRegs));
    };
    auto ptr_reg = [&] { return 28 + static_cast<int>(rng.nextBounded(2)); };
    auto mem_off = [&] {
        return static_cast<int32_t>(8 * rng.nextBounded(512));
    };

    // Weighted opcode mix biased toward the units that dominate power.
    const double u = rng.nextDouble();
    if (u < 0.26) { // scalar ALU
        const int kind = static_cast<int>(rng.nextBounded(6));
        const int rd = data_reg(), rn = data_reg(), rm = data_reg();
        switch (kind) {
          case 0: return add(rd, rn, rm);
          case 1: return sub(rd, rn, rm);
          case 2: return and_(rd, rn, rm);
          case 3: return orr(rd, rn, rm);
          case 4: return eor(rd, rn, rm);
          default: return lsl(rd, rn, rm);
        }
    }
    if (u < 0.33) { // immediate ALU / pointer bumps
        if (rng.nextDouble() < 0.3) {
            const int p = ptr_reg();
            return addi(p, p, static_cast<int32_t>(8 * rng.nextBounded(16)));
        }
        return addi(data_reg(), data_reg(),
                    static_cast<int32_t>(rng.nextBounded(4096)));
    }
    if (u < 0.40) { // long-latency integer
        if (rng.nextDouble() < 0.85)
            return mul(data_reg(), data_reg(), data_reg());
        return div(data_reg(), data_reg(), data_reg());
    }
    if (u < 0.62) { // vector
        const int kind = static_cast<int>(rng.nextBounded(4));
        const int vd = vec_reg(), vn = vec_reg(), vm = vec_reg();
        switch (kind) {
          case 0: return vadd(vd, vn, vm);
          case 1: return vmul(vd, vn, vm);
          default: return vfma(vd, vn, vm);
        }
    }
    if (u < 0.80) { // scalar memory
        const double m = rng.nextDouble();
        if (m < 0.12) {
            // Pointer chase: dependent loads through random memory —
            // the lowest-power behaviour (core drains on every miss).
            const int p = ptr_reg();
            return ldr(p, p, static_cast<int32_t>(8 * rng.nextBounded(8)));
        }
        if (m < 0.55)
            return ldr(data_reg(), rng.nextDouble() < 0.7 ? 30 : ptr_reg(),
                       mem_off());
        if (m < 0.9)
            return str(data_reg(), rng.nextDouble() < 0.7 ? 30 : ptr_reg(),
                       mem_off());
        return prfm(30, mem_off());
    }
    if (u < 0.94) { // vector memory
        if (rng.nextDouble() < 0.6)
            return vldr(vec_reg(), 30, mem_off());
        return vstr(vec_reg(), 30, mem_off());
    }
    return nop();
}

bool
genomesEqual(const std::vector<Instruction> &a_body, uint64_t a_seed,
             const std::vector<Instruction> &b_body, uint64_t b_seed)
{
    if (a_seed != b_seed || a_body.size() != b_body.size())
        return false;
    for (size_t i = 0; i < a_body.size(); ++i) {
        const Instruction &a = a_body[i];
        const Instruction &b = b_body[i];
        if (a.op != b.op || a.rd != b.rd || a.rn != b.rn ||
            a.rm != b.rm || a.imm != b.imm)
            return false;
    }
    return true;
}

} // namespace

/** Cached fitness of one unique genome. */
struct GaGenerator::CacheEntry
{
    std::vector<Instruction> body;
    uint64_t dataSeed = 0;
    double fitness = 0.0;
    int64_t frameRef = -1;
};

/** Per-worker reusable evaluation state. */
struct GaGenerator::EvalScratch
{
    std::vector<ActivityFrame> frames;
    FitnessEvaluator eval;

    EvalScratch(const DatasetBuilder &builder,
                const FitnessOptions &options)
        : eval(builder.netlist(), builder.engine(), builder.oracle(),
               options)
    {}
};

Status
GaConfig::validate() const
{
    if (populationSize < 4)
        return Status::invalidArgument("populationSize must be >= 4, got ",
                                       populationSize);
    if (elites >= populationSize)
        return Status::invalidArgument("elites (", elites,
                                       ") must be < populationSize (",
                                       populationSize, ")");
    if (tournamentSize == 0)
        return Status::invalidArgument("tournamentSize must be >= 1");
    if (generations == 0)
        return Status::invalidArgument("generations must be >= 1");
    if (bodyMinLen < 2 || bodyMaxLen < bodyMinLen)
        return Status::invalidArgument(
            "body length bounds invalid: min ", bodyMinLen, ", max ",
            bodyMaxLen, " (need 2 <= min <= max)");
    if (fitnessCycles == 0)
        return Status::invalidArgument("fitnessCycles must be >= 1");
    if (fitnessSignalStride == 0)
        return Status::invalidArgument(
            "fitnessSignalStride must be >= 1 (stride 0 would sample "
            "no signals and divide by zero)");
    return Status::okStatus();
}

GaGenerator::GaGenerator(const DatasetBuilder &builder,
                         const GaConfig &config)
    : builder_(builder), config_(config)
{
    const Status st = config.validate();
    APOLLO_REQUIRE(st.ok(), st.toString());
}

GaGenerator::~GaGenerator() = default;

std::vector<Instruction>
GaGenerator::randomBody(Xoshiro256StarStar &rng, uint32_t min_len,
                        uint32_t max_len)
{
    const uint32_t len = min_len +
        static_cast<uint32_t>(rng.nextBounded(max_len - min_len + 1));
    std::vector<Instruction> body;
    body.reserve(len);
    for (uint32_t i = 0; i < len; ++i)
        body.push_back(randomInstruction(rng));
    return body;
}

GaIndividual
GaGenerator::randomIndividual(Xoshiro256StarStar &rng,
                              uint32_t generation) const
{
    GaIndividual ind;
    ind.body = randomBody(rng, config_.bodyMinLen, config_.bodyMaxLen);
    ind.dataSeed = rng();
    ind.generation = generation;
    return ind;
}

Program
GaGenerator::toProgram(const GaIndividual &ind, const std::string &name,
                       int iterations)
{
    return Program::makeLoop(name, ind.body, iterations, ind.dataSeed);
}

int
GaGenerator::fitnessIterations(size_t body_len, uint64_t fitness_cycles)
{
    // Trip count sized so the loop comfortably outlives the cycle
    // budget (the simulation is capped at fitnessCycles).
    return std::clamp<int>(
        static_cast<int>(5 * (fitness_cycles + 400) / body_len), 4,
        8000);
}

uint64_t
GaGenerator::genomeKey(const GaIndividual &ind)
{
    uint64_t h = hashMix(ind.dataSeed ^ 0x9a6e57e21c35ULL);
    for (const Instruction &inst : ind.body) {
        const uint64_t packed =
            (static_cast<uint64_t>(inst.op) << 56) |
            (static_cast<uint64_t>(inst.rd) << 48) |
            (static_cast<uint64_t>(inst.rn) << 40) |
            (static_cast<uint64_t>(inst.rm) << 32) |
            static_cast<uint64_t>(static_cast<uint32_t>(inst.imm));
        h = hashCombine(h, packed);
    }
    return h;
}

Xoshiro256StarStar
GaGenerator::slotStream(uint32_t generation, uint32_t slot) const
{
    // Counter-seeded per-slot streams: reproduction draws depend only
    // on (config seed, generation, slot), never on evaluation order —
    // the invariant that makes the trajectory thread-count-invariant.
    return Xoshiro256StarStar(
        hashCombine(config_.seed, hashCombine(generation, slot)));
}

const GaIndividual &
GaGenerator::tournament(const std::vector<GaIndividual> &pop,
                        Xoshiro256StarStar &rng) const
{
    const GaIndividual *winner =
        &pop[rng.nextBounded(pop.size())];
    for (uint32_t t = 1; t < config_.tournamentSize; ++t) {
        const GaIndividual *challenger =
            &pop[rng.nextBounded(pop.size())];
        if (challenger->avgPower > winner->avgPower)
            winner = challenger;
    }
    return *winner;
}

void
GaGenerator::mutate(GaIndividual &ind, Xoshiro256StarStar &rng) const
{
    for (Instruction &inst : ind.body) {
        if (rng.nextDouble() < config_.mutationRate)
            inst = randomInstruction(rng);
    }
    if (rng.nextDouble() < config_.mutationRate && ind.body.size() > 2) {
        // Swap two instructions (scheduling mutation).
        const size_t a = rng.nextBounded(ind.body.size());
        const size_t b = rng.nextBounded(ind.body.size());
        std::swap(ind.body[a], ind.body[b]);
    }
    if (rng.nextDouble() < config_.mutationRate)
        ind.dataSeed = rng();
    if (rng.nextDouble() < 0.5 * config_.mutationRate) {
        // Grow or shrink by one instruction within bounds.
        if (rng.nextDouble() < 0.5 &&
            ind.body.size() < config_.bodyMaxLen) {
            ind.body.insert(
                ind.body.begin() +
                    static_cast<long>(rng.nextBounded(ind.body.size())),
                randomInstruction(rng));
        } else if (ind.body.size() > config_.bodyMinLen) {
            ind.body.erase(
                ind.body.begin() +
                static_cast<long>(rng.nextBounded(ind.body.size())));
        }
    }
}

GaGenerator::EvalScratch *
GaGenerator::acquireScratch()
{
    std::lock_guard<std::mutex> lock(scratchMutex_);
    if (!freeScratch_.empty()) {
        EvalScratch *s = freeScratch_.back();
        freeScratch_.pop_back();
        return s;
    }
    FitnessOptions options;
    options.signalStride = config_.fitnessSignalStride;
    options.vectorized = config_.vectorizedFitness;
    scratchPool_.push_back(
        std::make_unique<EvalScratch>(builder_, options));
    return scratchPool_.back().get();
}

void
GaGenerator::releaseScratch(EvalScratch *scratch)
{
    std::lock_guard<std::mutex> lock(scratchMutex_);
    freeScratch_.push_back(scratch);
}

void
GaGenerator::evaluatePopulation(std::vector<GaIndividual> &population,
                                uint32_t generation)
{
    APOLLO_TRACE_SPAN("ga.generation");
    const GaRunStats before = stats_;
    const size_t pop_size = population.size();

    // Serial resolution pass (ascending slot): look each genome up in
    // the cross-generation cache, then deduplicate within the
    // generation. Counters and the miss list depend only on slot
    // order, so they are identical at any thread count.
    struct Resolved
    {
        bool fromCache = false;
        double fitness = 0.0;
        int64_t frameRef = -1;
        size_t missIndex = 0;
    };
    std::vector<Resolved> resolved(pop_size);
    std::vector<size_t> miss_slots;
    std::vector<uint64_t> miss_keys;
    std::unordered_map<uint64_t, std::vector<size_t>> scheduled;

    for (size_t k = 0; k < pop_size; ++k) {
        const GaIndividual &ind = population[k];
        const uint64_t key = genomeKey(ind);

        if (config_.cacheFitness) {
            bool hit = false;
            if (auto it = cache_.find(key); it != cache_.end()) {
                for (const CacheEntry &entry : it->second) {
                    if (genomesEqual(entry.body, entry.dataSeed,
                                     ind.body, ind.dataSeed)) {
                        resolved[k] = {true, entry.fitness,
                                       entry.frameRef, 0};
                        hit = true;
                        break;
                    }
                }
            }
            if (!hit) {
                if (auto it = scheduled.find(key);
                    it != scheduled.end()) {
                    for (size_t j : it->second) {
                        const GaIndividual &first =
                            population[miss_slots[j]];
                        if (genomesEqual(first.body, first.dataSeed,
                                         ind.body, ind.dataSeed)) {
                            // Duplicate within this generation:
                            // evaluated once, shared by both slots.
                            resolved[k] = {false, 0.0, -1, j};
                            stats_.cacheHits++;
                            hit = true;
                            break;
                        }
                    }
                }
                if (!hit) {
                    resolved[k] = {false, 0.0, -1, miss_slots.size()};
                    scheduled[key].push_back(miss_slots.size());
                    miss_slots.push_back(k);
                    miss_keys.push_back(key);
                    stats_.cacheMisses++;
                }
            } else if (resolved[k].fromCache) {
                stats_.cacheHits++;
            }
        } else {
            resolved[k] = {false, 0.0, -1, miss_slots.size()};
            miss_slots.push_back(k);
            miss_keys.push_back(key);
            stats_.cacheMisses++;
        }
    }

    // Parallel fitness evaluation of the unique misses. Workers share
    // nothing but the scratch freelist; each result slot is written by
    // exactly one worker, and no RNG is consumed.
    struct MissResult
    {
        double fitness = 0.0;
        uint64_t cycles = 0;
        std::vector<ActivityFrame> frames;
    };
    std::vector<MissResult> results(miss_slots.size());

    ThreadPool &workers = config_.threads == 0
                              ? ThreadPool::global()
                              : (localPool_ ? *localPool_
                                            : *(localPool_ =
                                                    std::make_unique<
                                                        ThreadPool>(
                                                        config_.threads)));
    workers.parallelFor(miss_slots.size(), [&](size_t j0, size_t j1) {
        EvalScratch *scratch = acquireScratch();
        for (size_t j = j0; j < j1; ++j) {
            const GaIndividual &ind = population[miss_slots[j]];
            const Program prog = toProgram(
                ind, "ga",
                fitnessIterations(ind.body.size(),
                                  config_.fitnessCycles));
            scratch->frames.clear();
            TimingCore core(builder_.coreParams());
            core.run(prog, config_.fitnessCycles,
                     [&](const ActivityFrame &f) {
                         scratch->frames.push_back(f);
                     });
            MissResult &r = results[j];
            r.fitness = scratch->eval.averagePower(scratch->frames);
            r.cycles = scratch->frames.size();
            if (config_.captureFrames)
                r.frames = scratch->frames;
        }
        releaseScratch(scratch);
    });

    // Serial commit pass (miss order, then slot order): move captured
    // frames into the pool, insert cache entries, assign fitness.
    std::vector<int64_t> miss_frame_ref(miss_slots.size(), -1);
    for (size_t j = 0; j < miss_slots.size(); ++j) {
        MissResult &r = results[j];
        stats_.evaluations++;
        stats_.simulatedCycles += r.cycles;
        if (config_.captureFrames) {
            miss_frame_ref[j] =
                static_cast<int64_t>(framePool_.size());
            framePool_.push_back(std::move(r.frames));
        }
        if (config_.cacheFitness) {
            const GaIndividual &ind = population[miss_slots[j]];
            cache_[miss_keys[j]].push_back(CacheEntry{
                ind.body, ind.dataSeed, r.fitness, miss_frame_ref[j]});
        }
    }

    for (size_t k = 0; k < pop_size; ++k) {
        GaIndividual &ind = population[k];
        ind.generation = generation;
        if (resolved[k].fromCache) {
            ind.avgPower = resolved[k].fitness;
            frameRefOf_.push_back(resolved[k].frameRef);
        } else {
            const size_t j = resolved[k].missIndex;
            ind.avgPower = results[j].fitness;
            frameRefOf_.push_back(miss_frame_ref[j]);
        }
        ind.id = all_.size();
        all_.push_back(ind);
    }

    APOLLO_COUNT("apollo.ga.generations", 1);
    APOLLO_COUNT("apollo.ga.cache_hits",
                 stats_.cacheHits - before.cacheHits);
    APOLLO_COUNT("apollo.ga.cache_misses",
                 stats_.cacheMisses - before.cacheMisses);
    APOLLO_COUNT("apollo.ga.evaluations",
                 stats_.evaluations - before.evaluations);
    APOLLO_COUNT("apollo.ga.simulated_cycles",
                 stats_.simulatedCycles - before.simulatedCycles);
    APOLLO_GAUGE_SET("apollo.ga.frame_pool",
                     static_cast<double>(framePool_.size()));
}

void
GaGenerator::run()
{
    all_.clear();
    frameRefOf_.clear();
    framePool_.clear();
    cache_.clear();
    stats_ = GaRunStats{};

    std::vector<GaIndividual> population;
    population.reserve(config_.populationSize);
    for (uint32_t k = 0; k < config_.populationSize; ++k) {
        Xoshiro256StarStar rng = slotStream(0, k);
        population.push_back(randomIndividual(rng, 0));
    }

    for (uint32_t gen = 0; gen < config_.generations; ++gen) {
        evaluatePopulation(population, gen);

        if (gen + 1 == config_.generations)
            break;

        // Elitism + tournament reproduction. stable_sort keeps
        // equal-fitness order (duplicates are common once the cache
        // kicks in) independent of the sort implementation.
        std::vector<GaIndividual> sorted = population;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const GaIndividual &a, const GaIndividual &b) {
                             return a.avgPower > b.avgPower;
                         });

        std::vector<GaIndividual> next;
        next.reserve(config_.populationSize);
        for (uint32_t e = 0; e < config_.elites; ++e)
            next.push_back(sorted[e]);

        for (uint32_t slot = config_.elites;
             slot < config_.populationSize; ++slot) {
            Xoshiro256StarStar rng = slotStream(gen + 1, slot);
            GaIndividual child = tournament(population, rng);
            if (rng.nextDouble() < config_.crossoverRate) {
                const GaIndividual &other = tournament(population, rng);
                // Single-point crossover on the bodies.
                const size_t cut_a =
                    1 + rng.nextBounded(child.body.size() - 1);
                const size_t cut_b =
                    1 + rng.nextBounded(other.body.size() - 1);
                std::vector<Instruction> merged(
                    child.body.begin(),
                    child.body.begin() + static_cast<long>(cut_a));
                merged.insert(merged.end(),
                              other.body.begin() +
                                  static_cast<long>(cut_b),
                              other.body.end());
                if (merged.size() > config_.bodyMaxLen)
                    merged.resize(config_.bodyMaxLen);
                if (merged.size() >= config_.bodyMinLen)
                    child.body = std::move(merged);
            }
            mutate(child, rng);
            next.push_back(std::move(child));
        }
        population = std::move(next);
    }
}

std::span<const ActivityFrame>
GaGenerator::capturedFrames(size_t id) const
{
    APOLLO_REQUIRE(id < frameRefOf_.size(), "unknown individual id");
    const int64_t ref = frameRefOf_[id];
    if (ref < 0)
        return {};
    return framePool_[static_cast<size_t>(ref)];
}

const GaIndividual &
GaGenerator::best() const
{
    APOLLO_REQUIRE(!all_.empty(), "run() first");
    const GaIndividual *best = &all_[0];
    for (const GaIndividual &ind : all_)
        if (ind.avgPower > best->avgPower)
            best = &ind;
    return *best;
}

double
GaGenerator::powerRangeRatio() const
{
    APOLLO_REQUIRE(!all_.empty(), "run() first");
    double lo = all_[0].avgPower;
    double hi = all_[0].avgPower;
    for (const GaIndividual &ind : all_) {
        lo = std::min(lo, ind.avgPower);
        hi = std::max(hi, ind.avgPower);
    }
    return lo > 0 ? hi / lo : 0.0;
}

std::vector<GaIndividual>
GaGenerator::selectTrainingSet(size_t count) const
{
    APOLLO_REQUIRE(!all_.empty(), "run() first");
    // Bucket individuals by power, then round-robin across buckets so
    // the selected subset covers the power range uniformly.
    const size_t n_bins = std::max<size_t>(8, count / 4);
    double lo = all_[0].avgPower, hi = all_[0].avgPower;
    for (const GaIndividual &ind : all_) {
        lo = std::min(lo, ind.avgPower);
        hi = std::max(hi, ind.avgPower);
    }
    const double width = std::max(1e-12, (hi - lo) / n_bins);

    std::vector<std::vector<const GaIndividual *>> bins(n_bins);
    for (const GaIndividual &ind : all_) {
        size_t b = static_cast<size_t>((ind.avgPower - lo) / width);
        b = std::min(b, n_bins - 1);
        bins[b].push_back(&ind);
    }

    std::vector<GaIndividual> selected;
    selected.reserve(count);
    size_t round = 0;
    while (selected.size() < count) {
        bool any = false;
        for (auto &bin : bins) {
            if (round < bin.size()) {
                selected.push_back(*bin[round]);
                any = true;
                if (selected.size() == count)
                    break;
            }
        }
        if (!any)
            break; // all bins exhausted
        round++;
    }
    return selected;
}

} // namespace apollo
