/**
 * @file
 * FitnessEvaluator: the GA fitness power computation over a simulated
 * frame window — average finalized oracle power from every stride-th
 * signal, scaled back up (relative ordering is all the GA needs).
 *
 * Two implementations of the same numeric definition (INTERNALS.md §9):
 *  - vectorized (production): column-major batched toggle generation
 *    (ToggleColumnGenerator) feeding weighted bit-column accumulation
 *    (OracleAccumulator) — the fast path;
 *  - scalar: a per-cycle, per-signal loop computing the identical
 *    float accumulation order, kept as the in-tree baseline the perf
 *    bench layers against (the independent oracle lives in src/ref).
 *
 * Both paths are bit-identical for any frames/stride; the evaluator
 * owns reusable scratch so per-individual evaluation allocates nothing
 * after warm-up. Instances are not thread-safe; the GA keeps one per
 * worker.
 */

#ifndef APOLLO_GEN_FITNESS_EVAL_HH
#define APOLLO_GEN_FITNESS_EVAL_HH

#include <cstdint>
#include <span>
#include <vector>

#include "activity/toggle_columns.hh"
#include "power/oracle_accumulator.hh"

namespace apollo {

/** Fitness computation options. */
struct FitnessOptions
{
    /** Evaluate every stride-th signal (>= 1; validated by GaConfig). */
    uint32_t signalStride = 1;
    /** Use the batched column/bit-kernel path. */
    bool vectorized = true;
};

/** Reusable GA fitness evaluator (one per worker). */
class FitnessEvaluator
{
  public:
    FitnessEvaluator(const Netlist &netlist, const ActivityEngine &engine,
                     const PowerOracle &oracle,
                     const FitnessOptions &options = {});

    /**
     * Finalized per-cycle power over @p frames (one segment, lookbacks
     * clamp at index 0), estimated from the strided signal subset.
     */
    void cyclePowers(std::span<const ActivityFrame> frames,
                     std::vector<double> &out);

    /** Mean of cyclePowers (0.0 for an empty window). */
    double averagePower(std::span<const ActivityFrame> frames);

  private:
    void cyclePowersScalar(std::span<const ActivityFrame> frames,
                           std::vector<double> &out);

    const Netlist &netlist_;
    const ActivityEngine &engine_;
    const PowerOracle &oracle_;
    FitnessOptions options_;
    ToggleColumnGenerator gen_;
    OracleAccumulator acc_;
    std::vector<uint64_t> colWords_;
    std::vector<double> powers_;
};

} // namespace apollo

#endif // APOLLO_GEN_FITNESS_EVAL_HH
