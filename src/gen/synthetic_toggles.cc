#include "gen/synthetic_toggles.hh"

#include <algorithm>

#include "util/bitvec_kernels.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace apollo {

void
fillSyntheticToggleColumn(uint64_t *words, size_t rows, uint64_t seed,
                          uint64_t col)
{
    Xoshiro256StarStar rng(hashCombine(seed, col));
    const size_t wpc = (rows + 63) / 64;
    const uint64_t tail_mask =
        (rows & 63) ? ((1ULL << (rows & 63)) - 1) : ~0ULL;
    const double u = rng.nextDouble();
    int ands = 0; // toggle rate 2^-(ands+1)
    bool dense = false;
    if (u < 0.02)
        dense = true; // ~0.75
    else if (u < 0.07)
        ands = 0; // 0.5
    else if (u < 0.27)
        ands = 1; // 0.25
    else if (u < 0.55)
        ands = 2; // 0.125
    else if (u < 0.80)
        ands = 3; // 0.0625
    else if (u < 0.93)
        ands = 4; // 0.031
    else
        ands = 5; // 0.016
    for (size_t k = 0; k < wpc; ++k) {
        uint64_t word = rng();
        if (dense)
            word |= rng();
        for (int t = 0; t < ands; ++t)
            word &= rng();
        words[k] = word;
    }
    words[wpc - 1] &= tail_mask;
}

BitColumnMatrix
makeSyntheticToggleBlock(size_t rows, uint64_t first_col, size_t n_cols,
                         uint64_t seed)
{
    BitColumnMatrix block(rows, n_cols);
    for (size_t c = 0; c < n_cols; ++c)
        fillSyntheticToggleColumn(block.colWordsMutable(c), rows, seed,
                                  first_col + c);
    return block;
}

std::vector<float>
makeSyntheticLabels(size_t rows, size_t cols, size_t planted,
                    uint64_t seed, uint64_t label_seed)
{
    APOLLO_REQUIRE(planted >= 1 && planted <= cols,
                   "implausible planted support");
    Xoshiro256StarStar rng(label_seed);
    std::vector<float> y(rows, 2.0f);
    const size_t wpc = (rows + 63) / 64;
    std::vector<uint64_t> scratch(wpc);
    for (size_t p = 0; p < planted; ++p) {
        const auto j = static_cast<uint64_t>(p * cols / planted);
        const auto wj = static_cast<float>(0.4 + 1.6 * rng.nextDouble());
        fillSyntheticToggleColumn(scratch.data(), rows, seed, j);
        bitkernels::axpyWords(scratch.data(), wpc, rows, wj, y.data());
    }
    for (float &v : y)
        v += static_cast<float>(0.05 * rng.nextGaussian());
    return y;
}

Status
writeSyntheticShards(const std::string &base, size_t rows, size_t cols,
                     uint32_t shards, uint64_t seed, size_t block_cols,
                     ThreadPool *pool)
{
    StatusOr<ShardSetWriter> w =
        ShardSetWriter::open(base, rows, cols, shards);
    if (!w.ok())
        return w.status();
    if (block_cols == 0)
        block_cols = 1;
    if (pool == nullptr)
        pool = &ThreadPool::global();
    BitColumnMatrix block(rows, std::min(block_cols, cols));
    for (uint64_t c0 = 0; c0 < cols; c0 += block_cols) {
        const size_t run =
            static_cast<size_t>(std::min<uint64_t>(block_cols,
                                                   cols - c0));
        // Each column is a pure function of (seed, global column), so
        // the fan-out is deterministic at any pool size.
        pool->parallelFor(run, [&](size_t begin, size_t end) {
            for (size_t c = begin; c < end; ++c)
                fillSyntheticToggleColumn(block.colWordsMutable(c), rows,
                                          seed, c0 + c);
        });
        Status st = w->appendRaw(block.colWords(0), run);
        if (!st.ok())
            return st;
    }
    return w->finish();
}

} // namespace apollo
