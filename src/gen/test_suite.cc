#include "gen/test_suite.hh"

#include "util/rng.hh"

namespace apollo {

using namespace asm_helpers;

namespace {

/** dhrystone-like mix: integer ALU, short dependent chains, some
 *  memory, frequent (well-predicted) control flow. */
Program
dhrystoneLike()
{
    std::vector<Instruction> body = {
        ldr(0, 30, 0),
        addi(1, 0, 17),
        and_(2, 1, 0),
        eor(3, 2, 1),
        str(3, 30, 64),
        add(4, 3, 2),
        lsl(5, 4, 1),
        ldr(6, 30, 128),
        sub(7, 6, 5),
        orr(8, 7, 4),
        str(8, 30, 192),
        addi(9, 9, 1),
    };
    return Program::makeLoop("dhrystone", body, 4000, 0xd1);
}

/** Walk a huge footprint with a large stride: L1D misses, L2 hits. */
Program
dcacheMiss()
{
    std::vector<Instruction> body = {
        ldr(0, 29, 0),
        ldr(1, 29, 4096),
        add(2, 0, 1),
        addi(29, 29, 4096 + 64), // stride defeats L1 sets, stays in L2
        and_(3, 2, 0),
    };
    return Program::makeLoop("dcache_miss", body, 4000, 0xdc);
}

/** SIMD saxpy: y[i] += a * x[i] over streaming vectors. */
Program
saxpySimd()
{
    std::vector<Instruction> body = {
        vldr(0, 28, 0),
        vldr(1, 29, 0),
        vfma(1, 0, 2),
        vstr(1, 29, 0),
        vldr(3, 28, 32),
        vldr(4, 29, 32),
        vfma(4, 3, 2),
        vstr(4, 29, 32),
        addi(28, 28, 64),
        addi(29, 29, 64),
    };
    return Program::makeLoop("saxpy_simd", body, 4000, 0x5a);
}

/** Stream through an L2-resident footprint at full bandwidth while
 *  keeping the vector pipes busy. */
Program
maxpwrL2()
{
    std::vector<Instruction> body = {
        vldr(0, 28, 0),
        vldr(1, 28, 64),
        vmul(2, 0, 1),
        vfma(3, 2, 0),
        ldr(4, 29, 0),
        mul(5, 4, 4),
        addi(28, 28, 128),
        addi(29, 29, 4096 + 64),
        vstr(3, 30, 0),
    };
    return Program::makeLoop("maxpwr_l2", body, 4000, 0xa2);
}

/** Straight-line code big enough to thrash the 32KB L1I. */
Program
icacheMiss()
{
    Xoshiro256StarStar rng(0x1cac);
    std::vector<Instruction> instrs;
    const int n_instrs = 10000; // 40KB of code > 32KB L1I
    instrs.reserve(n_instrs + 3);
    instrs.push_back(movi(31, 50));
    for (int i = 0; i < n_instrs; ++i) {
        const int rd = static_cast<int>(rng.nextBounded(28));
        const int rn = static_cast<int>(rng.nextBounded(28));
        const int rm = static_cast<int>(rng.nextBounded(28));
        switch (rng.nextBounded(4)) {
          case 0: instrs.push_back(add(rd, rn, rm)); break;
          case 1: instrs.push_back(eor(rd, rn, rm)); break;
          case 2: instrs.push_back(orr(rd, rn, rm)); break;
          default: instrs.push_back(sub(rd, rn, rm)); break;
        }
    }
    instrs.push_back(subi(31, 31, 1));
    instrs.push_back(bnez(31, -(n_instrs + 1)));
    Program prog("icache_miss", std::move(instrs));
    prog.setDataSeed(0x1c);
    return prog;
}

/** Pointer-advance with a stride that escapes L2: memory misses. */
Program
cacheMiss()
{
    std::vector<Instruction> body = {
        ldr(0, 29, 0),
        add(1, 1, 0),
        addi(29, 29, 128 * 1024 + 64), // blows through L2
        eor(2, 1, 0),
    };
    return Program::makeLoop("cache_miss", body, 4000, 0xcc);
}

/** Scalar daxpy: load, multiply-add, store. */
Program
daxpy()
{
    std::vector<Instruction> body = {
        ldr(0, 28, 0),
        mul(1, 0, 10),
        ldr(2, 29, 0),
        add(3, 1, 2),
        str(3, 29, 0),
        addi(28, 28, 8),
        addi(29, 29, 8),
    };
    return Program::makeLoop("daxpy", body, 4000, 0xda);
}

/** Block copy through an L2-resident buffer. */
Program
memcpyL2()
{
    std::vector<Instruction> body = {
        vldr(0, 28, 0),
        vldr(1, 28, 32),
        vstr(0, 29, 0),
        vstr(1, 29, 32),
        addi(28, 28, 64),
        addi(29, 29, 64),
    };
    return Program::makeLoop("memcpy_l2", body, 8000, 0x3c);
}

} // namespace

std::vector<Instruction>
maxPowerBody()
{
    // Dense ILP across vector pipes, multiplier, ALUs, and both LSU
    // ports — the handcrafted power virus. Eight independent FMA
    // accumulators (v0..v7) give a reuse distance longer than the FMA
    // latency, so both vector pipes stay saturated; scalar work fills
    // the remaining issue slots.
    return {
        vfma(0, 8, 9),
        vfma(1, 10, 11),
        mul(0, 1, 2),
        add(3, 4, 5),
        vfma(2, 8, 10),
        vfma(3, 9, 11),
        ldr(6, 30, 0),
        eor(7, 6, 3),
        vfma(4, 8, 11),
        vfma(5, 9, 10),
        mul(8, 7, 0),
        add(9, 8, 7),
        vfma(6, 10, 8),
        vfma(7, 11, 9),
        ldr(10, 30, 64),
        str(9, 30, 128),
        vmul(12, 8, 9),
        vmul(13, 10, 11),
        add(11, 10, 6),
        eor(12, 11, 9),
    };
}

std::vector<TestBenchmark>
designerTestSuite()
{
    auto maxpwr_cpu =
        Program::makeLoop("maxpwr_cpu", maxPowerBody(), 4000, 0x99);

    auto throttled = [&](const char *name, uint64_t seed) {
        return Program::makeLoop(name, maxPowerBody(), 4000, seed);
    };

    // Table-4 order with Table-4 cycle budgets.
    std::vector<TestBenchmark> suite;
    suite.push_back({dhrystoneLike(), ThrottleMode::None, 1222});
    suite.push_back({maxpwr_cpu, ThrottleMode::None, 600});
    suite.push_back({dcacheMiss(), ThrottleMode::None, 654});
    suite.push_back({saxpySimd(), ThrottleMode::None, 1986});
    suite.push_back({maxpwrL2(), ThrottleMode::None, 1568});
    suite.push_back({icacheMiss(), ThrottleMode::None, 800});
    suite.push_back({cacheMiss(), ThrottleMode::None, 600});
    suite.push_back({daxpy(), ThrottleMode::None, 1600});
    suite.push_back({memcpyL2(), ThrottleMode::None, 3000});
    suite.push_back(
        {throttled("throttling_1", 0x71), ThrottleMode::Scheme1, 1100});
    suite.push_back(
        {throttled("throttling_2", 0x72), ThrottleMode::Scheme2, 1100});
    suite.push_back(
        {throttled("throttling_3", 0x73), ThrottleMode::Scheme3, 1100});
    return suite;
}

} // namespace apollo
