/**
 * @file
 * GA-based automatic training-data generation (§4.1, GeST-style [28]).
 *
 * Individuals are loop bodies over a constrained instruction set.
 * Fitness is the average ground-truth power of the individual's
 * micro-benchmark on the target design. High-power parents are selected
 * by tournament, paired by single-point crossover, and mutated. The
 * optimization is primed toward the power virus; because early
 * generations span low-power individuals, the union of all generations
 * covers a wide power range (>5x max/min — Fig. 3(b)), from which a
 * power-uniform training subset is drawn.
 *
 * The evaluation pipeline is parallel, deduplicated and single-pass
 * (docs/INTERNALS.md §9):
 *  - every population slot draws from its own counter-seeded RNG
 *    stream (seeded from (config seed, generation, slot)), and fitness
 *    evaluation consumes no RNG, so the GA trajectory is bit-identical
 *    at any thread count;
 *  - fitness simulations of one generation run concurrently on a
 *    thread pool, with per-worker scratch (core frames, toggle
 *    columns, accumulators) reused across generations;
 *  - a genome-keyed fitness cache skips re-simulation of duplicate
 *    genomes (elites and converged populations), with deterministic
 *    hit/miss counters;
 *  - each unique genome's activity frames are captured during its
 *    fitness simulation, so dataset export can reuse them instead of
 *    re-simulating (flow/flows.hh generateTrainingSet).
 */

#ifndef APOLLO_GEN_GA_GENERATOR_HH
#define APOLLO_GEN_GA_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"
#include "trace/toggle_trace.hh"
#include "util/rng.hh"
#include "util/status.hh"

namespace apollo {

/** GA hyper-parameters. */
struct GaConfig
{
    uint32_t populationSize = 36;
    uint32_t generations = 12;
    uint32_t bodyMinLen = 6;
    uint32_t bodyMaxLen = 26;
    uint32_t elites = 4;
    uint32_t tournamentSize = 3;
    double crossoverRate = 0.85;
    double mutationRate = 0.18;
    /** Cycle budget per fitness simulation. */
    uint64_t fitnessCycles = 600;
    /** Signal sampling stride for fitness power estimation (>= 1). */
    uint32_t fitnessSignalStride = 1;
    uint64_t seed = 0x6a6aULL;

    /** Fitness-evaluation worker threads (0 = hardware concurrency). */
    uint32_t threads = 0;
    /** Memoize fitness by genome across generations. */
    bool cacheFitness = true;
    /** Keep each unique genome's frames for single-pass export. */
    bool captureFrames = true;
    /** Use the batched column / bit-kernel fitness path. */
    bool vectorizedFitness = true;

    /**
     * Check the configuration; returns InvalidArgument for
     * out-of-range fields (e.g. fitnessSignalStride == 0, which would
     * skip every signal and divide by zero).
     */
    Status validate() const;
};

/** One generated micro-benchmark. */
struct GaIndividual
{
    std::vector<Instruction> body;
    uint64_t dataSeed = 1;
    double avgPower = 0.0;
    uint32_t generation = 0;
    /** Index into GaGenerator::all(), set by run(); key for
     *  GaGenerator::capturedFrames. */
    size_t id = 0;
};

/** Deterministic pipeline counters for one run(). */
struct GaRunStats
{
    /** Fitness simulations actually executed. */
    uint64_t evaluations = 0;
    /** Individuals served from the genome fitness cache. */
    uint64_t cacheHits = 0;
    /** Individuals that required a simulation (== evaluations). */
    uint64_t cacheMisses = 0;
    /** Recorded cycles simulated for fitness (excludes warm-up). */
    uint64_t simulatedCycles = 0;

    double
    hitRate() const
    {
        const uint64_t total = cacheHits + cacheMisses;
        return total ? static_cast<double>(cacheHits) / total : 0.0;
    }
};

/** The GA optimization loop. */
class GaGenerator
{
  public:
    /**
     * @param builder provides the design, core params and power oracle
     *                used for fitness evaluation (not mutated).
     */
    GaGenerator(const DatasetBuilder &builder,
                const GaConfig &config = GaConfig{});
    ~GaGenerator();

    /** Run all generations. */
    void run();

    /** Every individual ever evaluated, across generations. */
    const std::vector<GaIndividual> &all() const { return all_; }

    /** The highest-power individual found (the power virus). */
    const GaIndividual &best() const;

    /** Max/min average-power ratio across all individuals. */
    double powerRangeRatio() const;

    /**
     * Draw @p count individuals with approximately uniform coverage of
     * the observed power range (the paper selects ~300 of >1000 this
     * way for training).
     */
    std::vector<GaIndividual> selectTrainingSet(size_t count) const;

    /**
     * Frames captured during the fitness simulation of all()[id]
     * (shared between duplicate genomes). Empty when captureFrames is
     * off.
     */
    std::span<const ActivityFrame> capturedFrames(size_t id) const;

    /** Pipeline counters of the last run(). */
    const GaRunStats &stats() const { return stats_; }

    /** Materialize an individual as a runnable looped Program. */
    static Program toProgram(const GaIndividual &ind,
                             const std::string &name, int iterations);

    /**
     * Loop trip count used for fitness simulation: sized so the loop
     * comfortably outlives the cycle budget. Export re-simulation must
     * use the same count for frames to match the captured ones.
     */
    static int fitnessIterations(size_t body_len,
                                 uint64_t fitness_cycles);

    /** Cache key of a genome (body + data seed); exposed for tests. */
    static uint64_t genomeKey(const GaIndividual &ind);

    /** Generate one random loop body (exposed for tests). */
    static std::vector<Instruction> randomBody(Xoshiro256StarStar &rng,
                                               uint32_t min_len,
                                               uint32_t max_len);

  private:
    struct EvalScratch;
    struct CacheEntry;

    Xoshiro256StarStar slotStream(uint32_t generation,
                                  uint32_t slot) const;
    GaIndividual randomIndividual(Xoshiro256StarStar &rng,
                                  uint32_t generation) const;
    void evaluatePopulation(std::vector<GaIndividual> &population,
                            uint32_t generation);
    const GaIndividual &tournament(
        const std::vector<GaIndividual> &pop,
        Xoshiro256StarStar &rng) const;
    void mutate(GaIndividual &ind, Xoshiro256StarStar &rng) const;
    EvalScratch *acquireScratch();
    void releaseScratch(EvalScratch *scratch);

    const DatasetBuilder &builder_;
    GaConfig config_;
    std::vector<GaIndividual> all_;
    GaRunStats stats_;
    /** all_ index -> captured-frame pool slot (-1 when not captured). */
    std::vector<int64_t> frameRefOf_;
    std::vector<std::vector<ActivityFrame>> framePool_;
    /** Genome fitness cache; bucket vectors absorb key collisions. */
    std::unordered_map<uint64_t, std::vector<CacheEntry>> cache_;
    std::vector<std::unique_ptr<EvalScratch>> scratchPool_;
    std::vector<EvalScratch *> freeScratch_;
    std::unique_ptr<class ThreadPool> localPool_;
    std::mutex scratchMutex_;
};

} // namespace apollo

#endif // APOLLO_GEN_GA_GENERATOR_HH
