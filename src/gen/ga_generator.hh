/**
 * @file
 * GA-based automatic training-data generation (§4.1, GeST-style [28]).
 *
 * Individuals are loop bodies over a constrained instruction set.
 * Fitness is the average ground-truth power of the individual's
 * micro-benchmark on the target design. High-power parents are selected
 * by tournament, paired by single-point crossover, and mutated. The
 * optimization is primed toward the power virus; because early
 * generations span low-power individuals, the union of all generations
 * covers a wide power range (>5x max/min — Fig. 3(b)), from which a
 * power-uniform training subset is drawn.
 */

#ifndef APOLLO_GEN_GA_GENERATOR_HH
#define APOLLO_GEN_GA_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "trace/toggle_trace.hh"
#include "util/rng.hh"

namespace apollo {

/** GA hyper-parameters. */
struct GaConfig
{
    uint32_t populationSize = 36;
    uint32_t generations = 12;
    uint32_t bodyMinLen = 6;
    uint32_t bodyMaxLen = 26;
    uint32_t elites = 4;
    uint32_t tournamentSize = 3;
    double crossoverRate = 0.85;
    double mutationRate = 0.18;
    /** Cycle budget per fitness simulation. */
    uint64_t fitnessCycles = 600;
    /** Signal sampling stride for fitness power estimation. */
    uint32_t fitnessSignalStride = 1;
    uint64_t seed = 0x6a6aULL;
};

/** One generated micro-benchmark. */
struct GaIndividual
{
    std::vector<Instruction> body;
    uint64_t dataSeed = 1;
    double avgPower = 0.0;
    uint32_t generation = 0;
};

/** The GA optimization loop. */
class GaGenerator
{
  public:
    /**
     * @param builder provides the design, core params and power oracle
     *                used for fitness evaluation (not mutated).
     */
    GaGenerator(const DatasetBuilder &builder,
                const GaConfig &config = GaConfig{});

    /** Run all generations. */
    void run();

    /** Every individual ever evaluated, across generations. */
    const std::vector<GaIndividual> &all() const { return all_; }

    /** The highest-power individual found (the power virus). */
    const GaIndividual &best() const;

    /** Max/min average-power ratio across all individuals. */
    double powerRangeRatio() const;

    /**
     * Draw @p count individuals with approximately uniform coverage of
     * the observed power range (the paper selects ~300 of >1000 this
     * way for training).
     */
    std::vector<GaIndividual> selectTrainingSet(size_t count) const;

    /** Materialize an individual as a runnable looped Program. */
    static Program toProgram(const GaIndividual &ind,
                             const std::string &name, int iterations);

    /** Generate one random loop body (exposed for tests). */
    static std::vector<Instruction> randomBody(Xoshiro256StarStar &rng,
                                               uint32_t min_len,
                                               uint32_t max_len);

  private:
    GaIndividual randomIndividual(Xoshiro256StarStar &rng,
                                  uint32_t generation) const;
    void evaluate(GaIndividual &ind) const;
    const GaIndividual &tournament(
        const std::vector<GaIndividual> &pop,
        Xoshiro256StarStar &rng) const;
    void mutate(GaIndividual &ind, Xoshiro256StarStar &rng) const;

    const DatasetBuilder &builder_;
    GaConfig config_;
    std::vector<GaIndividual> all_;
};

} // namespace apollo

#endif // APOLLO_GEN_GA_GENERATOR_HH
