#include "gen/fitness_eval.hh"

#include "util/logging.hh"

namespace apollo {

FitnessEvaluator::FitnessEvaluator(const Netlist &netlist,
                                   const ActivityEngine &engine,
                                   const PowerOracle &oracle,
                                   const FitnessOptions &options)
    : netlist_(netlist), engine_(engine), oracle_(oracle),
      options_(options), gen_(engine), acc_(netlist, oracle)
{
    APOLLO_REQUIRE(options.signalStride >= 1, "stride must be positive");
}

void
FitnessEvaluator::cyclePowers(std::span<const ActivityFrame> frames,
                              std::vector<double> &out)
{
    if (frames.empty()) {
        out.clear();
        return;
    }
    if (!options_.vectorized) {
        cyclePowersScalar(frames, out);
        return;
    }

    const size_t m = netlist_.signalCount();
    const uint32_t stride = options_.signalStride;
    gen_.bind(frames);
    colWords_.resize(gen_.wordCount());
    acc_.begin(frames.size());
    for (size_t c = 0; c < m; c += stride) {
        const auto sig_id = static_cast<uint32_t>(c);
        gen_.fillColumn(sig_id, colWords_.data());
        acc_.addColumn(sig_id, colWords_.data());
    }
    acc_.finish(frames, static_cast<double>(stride), out);
}

void
FitnessEvaluator::cyclePowersScalar(std::span<const ActivityFrame> frames,
                                    std::vector<double> &out)
{
    // Same accumulation order as the vectorized path, one cycle at a
    // time: float base/per-unit glitch sums over ascending strided
    // signals, double combine over ascending units, then finalize.
    const size_t m = netlist_.signalCount();
    const uint32_t stride = options_.signalStride;
    const size_t n = frames.size();
    out.resize(n);
    for (size_t i = 0; i < n; ++i) {
        float base = 0.0f;
        float glitch[numUnits] = {};
        for (size_t c = 0; c < m; c += stride) {
            const auto sig_id = static_cast<uint32_t>(c);
            if (!engine_.toggles(sig_id, frames, i, 0))
                continue;
            base += acc_.baseWeight(sig_id);
            const float gw = acc_.glitchWeight(sig_id);
            if (gw != 0.0f) {
                const auto u = static_cast<size_t>(
                    netlist_.signal(sig_id).unit);
                glitch[u] += gw;
            }
        }
        double sum = static_cast<double>(base);
        for (size_t u = 0; u < numUnits; ++u)
            sum += static_cast<double>(frames[i].activity[u]) *
                   static_cast<double>(glitch[u]);
        out[i] =
            oracle_.finalize(sum * static_cast<double>(stride), i);
    }
}

double
FitnessEvaluator::averagePower(std::span<const ActivityFrame> frames)
{
    if (frames.empty())
        return 0.0;
    cyclePowers(frames, powers_);
    double total = 0.0;
    for (double p : powers_)
        total += p;
    return total / static_cast<double>(powers_.size());
}

} // namespace apollo
