/**
 * @file
 * Counter-seeded synthesis of paper-scale toggle matrices. APOLLO's
 * substrate is M > 5e5 candidate RTL signals; benchmarking selection
 * at that scale needs an N x M toggle matrix that is never resident.
 * Column j here is a pure function of (seed, j) — a private
 * Xoshiro256** stream seeded with hashCombine(seed, j), the same
 * counter-seeding idiom the GA pipeline uses for its per-slot
 * streams — so the matrix can be generated in bounded column blocks,
 * in any block granularity and on any thread count, yielding
 * bit-identical bytes.
 *
 * Column density classes mirror bench_perf_solver's N1ish synthetic
 * design: rare control toggles (~2%) up to hot gated-clock nets
 * (~75%), drawn per column (AND-ing k random words gives toggle rate
 * 2^-k, OR-ing two gives 3/4). Labels come from a planted sparse
 * power model whose columns are regenerated on demand, so building y
 * costs O(planted * N), not O(M * N).
 */

#ifndef APOLLO_GEN_SYNTHETIC_TOGGLES_HH
#define APOLLO_GEN_SYNTHETIC_TOGGLES_HH

#include <cstdint>
#include <vector>

#include "trace/shard_store.hh"
#include "util/bitvec.hh"
#include "util/status.hh"

namespace apollo {

class ThreadPool;

/** Fill one packed column ((rows+63)/64 words, zero tail) as the pure
 *  function of (seed, col). */
void fillSyntheticToggleColumn(uint64_t *words, size_t rows,
                               uint64_t seed, uint64_t col);

/** Materialize columns [first_col, first_col + n_cols) as a block.
 *  Blocked calls concatenate to the same bytes as one big call. */
BitColumnMatrix makeSyntheticToggleBlock(size_t rows, uint64_t first_col,
                                         size_t n_cols, uint64_t seed);

/**
 * Labels for the planted sparse model over the synthetic matrix:
 * y = 2 + sum_p w_p * x_{j_p} + 0.05 * gaussian noise, with
 * j_p = p * cols / planted and w_p in [0.4, 2.0). Only the planted
 * columns are regenerated; the matrix itself is never materialized.
 */
std::vector<float> makeSyntheticLabels(size_t rows, size_t cols,
                                       size_t planted, uint64_t seed,
                                       uint64_t label_seed);

/**
 * Stream the full synthetic matrix into an APSH shard set, one
 * bounded column block in RAM at a time (block generation fans over
 * the pool; output bytes are thread-count independent).
 */
Status writeSyntheticShards(const std::string &base, size_t rows,
                            size_t cols, uint32_t shards, uint64_t seed,
                            size_t block_cols = 4096,
                            ThreadPool *pool = nullptr);

} // namespace apollo

#endif // APOLLO_GEN_SYNTHETIC_TOGGLES_HH
