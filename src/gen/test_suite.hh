/**
 * @file
 * The 12 designer-handcrafted testing micro-benchmarks of Table 4.
 * Training data is GA-generated; testing uses these fixed benchmarks
 * covering low- and high-power regions and the three throttling schemes.
 * Cycle counts match Table 4 (each benchmark is simulated for exactly
 * its listed cycle budget).
 */

#ifndef APOLLO_GEN_TEST_SUITE_HH
#define APOLLO_GEN_TEST_SUITE_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "uarch/throttle.hh"

namespace apollo {

/** One entry of the designer test suite. */
struct TestBenchmark
{
    Program program;
    ThrottleMode throttle = ThrottleMode::None;
    /** Cycle budget, equal to the Table-4 cycle count. */
    uint64_t cycles = 0;
};

/** The full 12-benchmark suite in Table-4 order. */
std::vector<TestBenchmark> designerTestSuite();

/** The dense compute kernel used as the handcrafted power virus. */
std::vector<Instruction> maxPowerBody();

} // namespace apollo

#endif // APOLLO_GEN_TEST_SUITE_HH
