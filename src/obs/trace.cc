#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace apollo::obs {

namespace {

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

// Touch the epoch at static-init time so span timestamps measure from
// process start even if the first span fires late.
const auto epochInit = processEpoch();

} // namespace

uint64_t
nowMicros()
{
    (void)epochInit;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - processEpoch())
            .count());
}

TraceCollector &
TraceCollector::instance()
{
    // Leaked for the same reason as MetricRegistry: thread-local
    // buffers may flush during late static destruction.
    static TraceCollector *collector = new TraceCollector();
    return *collector;
}

TraceCollector::ThreadBuffer &
TraceCollector::localBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
        auto fresh = std::make_shared<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(mu_);
        fresh->tid = nextTid_++;
        buffers_.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

void
TraceCollector::record(const TraceEvent &event)
{
    ThreadBuffer &buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer.mu);
    TraceEvent stamped = event;
    stamped.tid = buffer.tid;
    buffer.events.push_back(stamped);
}

size_t
TraceCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        total += buffer->events.size();
    }
    return total;
}

std::string
TraceCollector::flushJson()
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &buffer : buffers_) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mu);
            events.insert(events.end(), buffer->events.begin(),
                          buffer->events.end());
            buffer->events.clear();
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tsMicros < b.tsMicros;
                     });

    std::string out = "{\"traceEvents\": [";
    for (size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", "
                      "\"ph\": \"X\", \"ts\": %" PRIu64
                      ", \"dur\": %" PRIu64
                      ", \"pid\": 1, \"tid\": %u}",
                      i ? "," : "", e.name, e.category, e.tsMicros,
                      e.durMicros, e.tid);
        out += buf;
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

Status
TraceCollector::writeJson(const std::string &path)
{
    std::ofstream os(path);
    if (!os.is_open())
        return Status::ioError("cannot open trace output '", path, "'");
    os << flushJson();
    os.flush();
    if (!os)
        return Status::ioError("trace write to '", path, "' failed");
    return Status::okStatus();
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        buffer->events.clear();
    }
}

} // namespace apollo::obs
