/**
 * @file
 * Process-wide metrics registry (docs/INTERNALS.md §10): monotonic
 * counters, gauges, and fixed-bucket histograms, all lock-free on the
 * hot path, registered lazily by name under the
 * `apollo.<subsystem>.<metric>` scheme.
 *
 * Two gates keep the cost of an *unused* registry at a branch on a
 * relaxed atomic load:
 *  - compile time: the APOLLO_OBS macro (CMake option, default ON)
 *    compiles every instrumentation macro down to `(void)0` when OFF;
 *  - runtime: MetricRegistry::setEnabled(false) short-circuits the
 *    macros before any lookup or atomic RMW happens.
 *
 * Instrumentation sites use the APOLLO_COUNT / APOLLO_GAUGE_SET /
 * APOLLO_OBSERVE / APOLLO_SCOPED_TIMER macros below; metric names must
 * be string literals (the registry keeps its own copy, but counter
 * references are cached in block-scope statics per call site).
 */

#ifndef APOLLO_OBS_METRICS_HH
#define APOLLO_OBS_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#ifndef APOLLO_OBS
#define APOLLO_OBS 1
#endif

namespace apollo::obs {

/** Monotonic counter; add() is a relaxed atomic fetch-add. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (e.g. pool occupancy). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0.0, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * v <= bounds[i]; one extra overflow bucket catches the rest. Bounds
 * are fixed at registration, so observe() is a linear scan over a
 * handful of doubles plus one relaxed fetch-add.
 */
class Histogram
{
  public:
    explicit Histogram(std::span<const double> bounds);

    void observe(double v);

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const;

    std::span<const double>
    bounds() const
    {
        return bounds_;
    }

    /** i in [0, bounds().size()]; the last index is the overflow. */
    uint64_t
    bucketCount(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Default histogram bounds for wall-clock seconds. */
std::span<const double> latencyBounds();
/** Default bounds for ratios in [0, 1] (e.g. toggle density). */
std::span<const double> ratioBounds();
/** Default bounds for small counts (sweeps per lambda etc.). */
std::span<const double> countBounds();

/**
 * RAII wall-clock timer: records elapsed seconds into a histogram on
 * destruction. A null histogram makes the timer inert (the disabled
 * path).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram *hist)
        : hist_(hist),
          t0_(hist ? std::chrono::steady_clock::now()
                   : std::chrono::steady_clock::time_point{})
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (hist_)
            hist_->observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0_)
                               .count());
    }

  private:
    Histogram *hist_;
    std::chrono::steady_clock::time_point t0_;
};

/**
 * The process-wide registry. Metric objects are heap-allocated and
 * never destroyed before process exit, so references handed out by
 * counter()/gauge()/histogram() stay valid forever (reset() zeroes
 * values without invalidating them).
 */
class MetricRegistry
{
  public:
    static MetricRegistry &instance();

    /** The runtime gate every instrumentation macro checks first. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Find-or-create; thread-safe. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    /** @p bounds applies only on first registration (empty = latency). */
    Histogram &histogram(std::string_view name,
                         std::span<const double> bounds = {});

    /** Registered counters and their current values, sorted by name. */
    std::map<std::string, uint64_t> counterValues() const;

    /**
     * Deterministic JSON snapshot: {"counters": {...}, "gauges": {...},
     * "histograms": {...}} with keys sorted lexicographically.
     */
    std::string snapshotJson() const;

    /** Zero every metric value (registrations survive). */
    void reset();

  private:
    MetricRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
    std::atomic<bool> enabled_{true};
};

} // namespace apollo::obs

#define APOLLO_OBS_CONCAT_IMPL(a, b) a##b
#define APOLLO_OBS_CONCAT(a, b) APOLLO_OBS_CONCAT_IMPL(a, b)

#if APOLLO_OBS

/** True when metrics are compiled in and runtime-enabled. */
#define APOLLO_OBS_ON()                                                  \
    (::apollo::obs::MetricRegistry::instance().enabled())

/** Add @p n to counter @p name (string literal). */
#define APOLLO_COUNT(name, n)                                            \
    do {                                                                 \
        if (APOLLO_OBS_ON()) {                                           \
            static ::apollo::obs::Counter &apollo_obs_counter =          \
                ::apollo::obs::MetricRegistry::instance().counter(name); \
            apollo_obs_counter.add(static_cast<uint64_t>(n));            \
        }                                                                \
    } while (0)

/** Set gauge @p name to @p v. */
#define APOLLO_GAUGE_SET(name, v)                                        \
    do {                                                                 \
        if (APOLLO_OBS_ON()) {                                           \
            static ::apollo::obs::Gauge &apollo_obs_gauge =              \
                ::apollo::obs::MetricRegistry::instance().gauge(name);   \
            apollo_obs_gauge.set(static_cast<double>(v));                \
        }                                                                \
    } while (0)

/** Observe @p v in histogram @p name with @p bounds (span). */
#define APOLLO_OBSERVE(name, v, bounds)                                  \
    do {                                                                 \
        if (APOLLO_OBS_ON()) {                                           \
            static ::apollo::obs::Histogram &apollo_obs_hist =           \
                ::apollo::obs::MetricRegistry::instance().histogram(     \
                    name, bounds);                                       \
            apollo_obs_hist.observe(static_cast<double>(v));             \
        }                                                                \
    } while (0)

/** Time the enclosing scope into latency histogram @p name. */
#define APOLLO_SCOPED_TIMER(name)                                        \
    ::apollo::obs::ScopedTimer APOLLO_OBS_CONCAT(apollo_obs_timer_,      \
                                                 __LINE__)(              \
        APOLLO_OBS_ON()                                                  \
            ? &::apollo::obs::MetricRegistry::instance().histogram(     \
                  name)                                                  \
            : nullptr)

#else // !APOLLO_OBS

#define APOLLO_OBS_ON() (false)
#define APOLLO_COUNT(name, n) ((void)0)
#define APOLLO_GAUGE_SET(name, v) ((void)0)
#define APOLLO_OBSERVE(name, v, bounds) ((void)0)
#define APOLLO_SCOPED_TIMER(name) ((void)0)

#endif // APOLLO_OBS

#endif // APOLLO_OBS_METRICS_HH
