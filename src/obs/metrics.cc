#include "obs/metrics.hh"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>

namespace apollo::obs {

namespace {

constexpr std::array<double, 9> kLatencyBounds = {
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};

constexpr std::array<double, 9> kRatioBounds = {
    0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0};

constexpr std::array<double, 10> kCountBounds = {
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};

void
atomicAddDouble(std::atomic<double> &target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed))
        ;
}

/**
 * JSON number formatting: counters print as integers, doubles with
 * enough digits to round-trip but no locale dependence.
 */
std::string
jsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    // Metric names are plain identifiers; escape defensively anyway.
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::span<const double>
latencyBounds()
{
    return kLatencyBounds;
}

std::span<const double>
ratioBounds()
{
    return kRatioBounds;
}

std::span<const double>
countBounds()
{
    return kCountBounds;
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(new std::atomic<uint64_t>[bounds.size() + 1])
{
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        i++;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(sum_, v);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

MetricRegistry &
MetricRegistry::instance()
{
    // Leaked on purpose: instrumentation sites cache references in
    // function-local statics whose destruction order is unknowable.
    static MetricRegistry *registry = new MetricRegistry();
    return *registry;
}

Counter &
MetricRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge &
MetricRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

Histogram &
MetricRegistry::histogram(std::string_view name,
                          std::span<const double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(
                              bounds.empty() ? latencyBounds() : bounds))
                 .first;
    return *it->second;
}

std::map<std::string, uint64_t>
MetricRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, uint64_t> out;
    for (const auto &[name, counter] : counters_)
        out.emplace(name, counter->value());
    return out;
}

std::string
MetricRegistry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, counter] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, counter->value());
        out += "    \"" + jsonEscape(name) + "\": " + buf;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, gauge] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) +
               "\": " + jsonDouble(gauge->value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, hist->count());
        out += "    \"" + jsonEscape(name) + "\": {\"count\": " + buf +
               ", \"sum\": " + jsonDouble(hist->sum()) +
               ", \"bounds\": [";
        const auto bounds = hist->bounds();
        for (size_t i = 0; i < bounds.size(); ++i) {
            if (i)
                out += ", ";
            out += jsonDouble(bounds[i]);
        }
        out += "], \"buckets\": [";
        for (size_t i = 0; i <= bounds.size(); ++i) {
            if (i)
                out += ", ";
            std::snprintf(buf, sizeof(buf), "%" PRIu64,
                          hist->bucketCount(i));
            out += buf;
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, hist] : histograms_)
        hist->reset();
}

} // namespace apollo::obs
