/**
 * @file
 * Lightweight tracing (docs/INTERNALS.md §10): RAII `TraceSpan`s record
 * complete ("ph":"X") events into thread-local buffers; `flushJson()`
 * drains every buffer into a Chrome `trace_event` JSON document that
 * chrome://tracing and Perfetto load directly.
 *
 * Tracing is off by default (unlike metrics): a disabled span costs one
 * relaxed atomic load. Span names and categories must be string
 * literals — events store the pointers, not copies.
 */

#ifndef APOLLO_OBS_TRACE_HH
#define APOLLO_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh" // APOLLO_OBS + concat macros
#include "util/status.hh"

namespace apollo::obs {

/** One complete span, timestamps in microseconds since process start. */
struct TraceEvent
{
    const char *name = nullptr;
    const char *category = nullptr;
    uint64_t tsMicros = 0;
    uint64_t durMicros = 0;
    uint32_t tid = 0;
};

/** Microseconds since the process-wide steady-clock epoch. */
uint64_t nowMicros();

/** Process-wide sink for span events. */
class TraceCollector
{
  public:
    static TraceCollector &instance();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Append to the calling thread's buffer (auto-registered). */
    void record(const TraceEvent &event);

    /** Events recorded so far across all threads (drains nothing). */
    size_t eventCount() const;

    /**
     * Drain every thread buffer into a Chrome trace_event JSON
     * document: {"traceEvents": [...], "displayTimeUnit": "ms"}.
     */
    std::string flushJson();

    /** flushJson() to a file. */
    Status writeJson(const std::string &path);

    /** Drop all buffered events. */
    void clear();

  private:
    TraceCollector() = default;

    struct ThreadBuffer
    {
        std::mutex mu;
        std::vector<TraceEvent> events;
        uint32_t tid = 0;
    };

    ThreadBuffer &localBuffer();

    mutable std::mutex mu_;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
    uint32_t nextTid_ = 1;
    std::atomic<bool> enabled_{false};
};

/**
 * RAII span: captures the start time if tracing is enabled at
 * construction and records one "X" event at scope exit.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, const char *category = "apollo")
        : name_(name), category_(category),
          active_(TraceCollector::instance().enabled()),
          startMicros_(active_ ? nowMicros() : 0)
    {}

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (!active_)
            return;
        TraceEvent event;
        event.name = name_;
        event.category = category_;
        event.tsMicros = startMicros_;
        event.durMicros = nowMicros() - startMicros_;
        TraceCollector::instance().record(event);
    }

  private:
    const char *name_;
    const char *category_;
    bool active_;
    uint64_t startMicros_;
};

} // namespace apollo::obs

#if APOLLO_OBS
/** Trace the enclosing scope as a span named @p name (literal). */
#define APOLLO_TRACE_SPAN(name)                                          \
    ::apollo::obs::TraceSpan APOLLO_OBS_CONCAT(apollo_obs_span_,         \
                                               __LINE__)(name)
#else
#define APOLLO_TRACE_SPAN(name) ((void)0)
#endif

#endif // APOLLO_OBS_TRACE_HH
