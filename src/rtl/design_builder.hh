/**
 * @file
 * DesignBuilder: generates parameterized synthetic netlists whose
 * statistical structure mirrors the commercial cores the paper targets —
 * signals clustered per functional unit, heterogeneous lognormal
 * capacitances, high-capacitance gated clock nets with enables, multi-bit
 * buses with correlated toggling, and pipeline-delayed activity response.
 *
 * Three presets are provided:
 *  - neoverseN1ish(): ~24k signals (stands in for Neoverse N1, M > 5e5)
 *  - cortexA77ish():  ~40k signals, vector/issue heavy (Cortex-A77,
 *                     M > 1e6)
 *  - tiny():          ~1.8k signals for unit tests
 */

#ifndef APOLLO_RTL_DESIGN_BUILDER_HH
#define APOLLO_RTL_DESIGN_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/netlist.hh"

namespace apollo {

/** Per-unit generation parameters. */
struct UnitConfig
{
    UnitId unit = UnitId::Misc;
    /** Total signals generated for this unit (all kinds). */
    uint32_t signals = 0;
    /** Number of multi-bit buses carved out of the unit's signals. */
    uint32_t busCount = 0;
    /** Bits per bus. */
    uint32_t busWidth = 16;
    /** Multiplier on this unit's signal capacitances. */
    float capScale = 1.0f;
};

/** Whole-design generation parameters. */
struct DesignConfig
{
    std::string name = "design";
    uint64_t seed = 1;
    std::vector<UnitConfig> units;
    /** One gated clock (plus enable) is generated per this many FFs. */
    uint32_t ffPerClockGate = 32;
    /** Full-design gate count this netlist stands in for (GE). */
    double nominalCoreGates = 4.0e6;
    /** Full-design nominal average power (arbitrary units). */
    double nominalCorePower = 4.0e6 * 0.15;

    /** ~24k-signal stand-in for Arm Neoverse N1. */
    static DesignConfig neoverseN1ish();
    /** ~40k-signal stand-in for Arm Cortex-A77. */
    static DesignConfig cortexA77ish();
    /** ~1.8k-signal design for unit tests. */
    static DesignConfig tiny();
};

/** Generates a Netlist from a DesignConfig, deterministically per seed. */
class DesignBuilder
{
  public:
    static Netlist build(const DesignConfig &config);
};

} // namespace apollo

#endif // APOLLO_RTL_DESIGN_BUILDER_HH
