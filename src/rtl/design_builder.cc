#include "rtl/design_builder.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace apollo {

namespace {

/** Lognormal capacitance draw with clamped tail. */
float
drawCap(Xoshiro256StarStar &rng, float scale, float sigma = 0.7f)
{
    const float c = scale * std::exp(sigma
            * static_cast<float>(rng.nextGaussian()));
    return std::min(c, scale * 30.0f);
}

void
buildUnit(Netlist &netlist, const UnitConfig &unit_cfg,
          uint32_t ff_per_clock_gate, Xoshiro256StarStar &rng)
{
    const UnitId unit = unit_cfg.unit;
    const uint32_t total = unit_cfg.signals;
    UnitRange range;
    range.first = static_cast<uint32_t>(netlist.signalCount());
    range.count = total;

    // Partition the unit's signal budget. The clock tree unit is special:
    // it is all clock distribution.
    uint32_t n_bus_bits = unit_cfg.busCount * unit_cfg.busWidth;
    if (n_bus_bits > total / 2)
        n_bus_bits = 0; // config asked for more bus bits than sensible
    uint32_t remaining = total - n_bus_bits;
    uint32_t n_ff;
    uint32_t n_gclk;
    if (unit == UnitId::ClockTree) {
        n_ff = 0;
        n_gclk = remaining / 2;
    } else {
        n_ff = static_cast<uint32_t>(remaining * 0.45);
        n_gclk = std::max<uint32_t>(1, n_ff / ff_per_clock_gate);
    }
    const uint32_t n_clken = n_gclk;
    const uint32_t n_wire =
        remaining - n_ff - std::min(remaining - n_ff, n_gclk + n_clken);

    auto common = [&](SignalKind kind) {
        Signal sig;
        sig.unit = unit;
        sig.kind = kind;
        const double u = rng.nextDouble();
        sig.latency = u < 0.6 ? 0 : (u < 0.9 ? 1 : 2);
        return sig;
    };

    // Gated clock nets: high capacitance (each drives many flop clock
    // pins), toggling is fully determined by the unit's clock enable.
    // These are the single largest dynamic-power contributors, which is
    // why §7.4 finds 39/159 proxies are gated clocks.
    for (uint32_t i = 0; i < n_gclk; ++i) {
        Signal sig = common(SignalKind::GatedClock);
        sig.cap = drawCap(rng, unit_cfg.capScale * 28.0f, 0.5f);
        sig.actSensitivity = 1.0f;
        sig.dataSensitivity = 0.0f;
        sig.baseRate = 0.0f;
        sig.latency = 0;
        netlist.addSignal(sig);
    }
    // Clock-gate enables: cheap nets toggling on gating transitions.
    for (uint32_t i = 0; i < n_clken; ++i) {
        Signal sig = common(SignalKind::ClockEnable);
        sig.cap = drawCap(rng, unit_cfg.capScale * 1.5f);
        sig.actSensitivity = 1.0f;
        sig.latency = 0;
        netlist.addSignal(sig);
    }
    // Flip-flops.
    for (uint32_t i = 0; i < n_ff; ++i) {
        Signal sig = common(SignalKind::FlipFlop);
        sig.cap = drawCap(rng, unit_cfg.capScale * 1.0f);
        sig.actSensitivity =
            0.35f + 0.65f * static_cast<float>(rng.nextDouble());
        sig.dataSensitivity =
            0.5f * static_cast<float>(rng.nextDouble());
        // A small number of free-running state machines / counters.
        sig.baseRate = rng.nextDouble() < 0.01
            ? 0.3f + 0.6f * static_cast<float>(rng.nextDouble())
            : 0.03f * static_cast<float>(rng.nextDouble());
        netlist.addSignal(sig);
    }
    // Combinational wires: data-sensitive, glitch-prone.
    for (uint32_t i = 0; i < n_wire; ++i) {
        Signal sig = common(SignalKind::CombWire);
        sig.cap = drawCap(rng, unit_cfg.capScale * 0.8f);
        sig.actSensitivity =
            0.25f + 0.75f * static_cast<float>(rng.nextDouble());
        sig.dataSensitivity =
            0.2f + 0.6f * static_cast<float>(rng.nextDouble());
        sig.baseRate = 0.02f * static_cast<float>(rng.nextDouble());
        sig.glitchDepth =
            static_cast<uint8_t>(1 + rng.nextBounded(6));
        netlist.addSignal(sig);
    }
    // Buses: datapath words whose bits toggle together on a bus event.
    const uint32_t n_buses =
        unit_cfg.busWidth ? n_bus_bits / unit_cfg.busWidth : 0;
    for (uint32_t b = 0; b < n_buses; ++b) {
        Bus bus;
        bus.firstSignal = static_cast<uint32_t>(netlist.signalCount());
        bus.width = unit_cfg.busWidth;
        bus.eventSensitivity =
            0.4f + 0.5f * static_cast<float>(rng.nextDouble());
        const int32_t bus_id =
            static_cast<int32_t>(netlist.buses().size());
        const uint8_t bus_latency =
            rng.nextDouble() < 0.6 ? 0 : 1;
        for (uint32_t i = 0; i < unit_cfg.busWidth; ++i) {
            Signal sig = common(SignalKind::BusBit);
            sig.cap = drawCap(rng, unit_cfg.capScale * 1.2f, 0.4f);
            sig.actSensitivity = bus.eventSensitivity;
            sig.dataSensitivity =
                0.3f + 0.5f * static_cast<float>(rng.nextDouble());
            sig.busId = bus_id;
            sig.latency = bus_latency;
            netlist.addSignal(sig);
        }
        netlist.addBus(bus);
    }

    range.count =
        static_cast<uint32_t>(netlist.signalCount()) - range.first;
    netlist.setUnitRange(unit, range);
}

UnitConfig
unitCfg(UnitId unit, uint32_t signals, uint32_t bus_count,
        uint32_t bus_width, float cap_scale)
{
    UnitConfig cfg;
    cfg.unit = unit;
    cfg.signals = signals;
    cfg.busCount = bus_count;
    cfg.busWidth = bus_width;
    cfg.capScale = cap_scale;
    return cfg;
}

} // namespace

DesignConfig
DesignConfig::neoverseN1ish()
{
    DesignConfig cfg;
    cfg.name = "neoverse-n1ish";
    cfg.seed = 0x4e31;
    cfg.nominalCoreGates = 4.2e6;
    cfg.nominalCorePower = 4.2e6 * 0.14;
    cfg.units = {
        unitCfg(UnitId::Fetch, 1200, 4, 16, 0.7f),
        unitCfg(UnitId::BranchPred, 1000, 2, 16, 0.7f),
        unitCfg(UnitId::ICache, 1200, 6, 32, 0.9f),
        unitCfg(UnitId::Decode, 1400, 4, 16, 0.8f),
        unitCfg(UnitId::Rename, 1200, 4, 16, 0.8f),
        unitCfg(UnitId::Issue, 3200, 8, 16, 1.2f),
        unitCfg(UnitId::IntAlu, 1800, 6, 32, 1.4f),
        unitCfg(UnitId::IntMulDiv, 1000, 4, 32, 1.6f),
        unitCfg(UnitId::VecExec, 2800, 10, 32, 2.2f),
        unitCfg(UnitId::RegFile, 1200, 6, 32, 1.4f),
        unitCfg(UnitId::Bypass, 900, 4, 32, 1.2f),
        unitCfg(UnitId::LoadStore, 2400, 8, 32, 1.5f),
        unitCfg(UnitId::DCache, 1400, 6, 32, 1.4f),
        unitCfg(UnitId::L2Cache, 1200, 6, 32, 1.2f),
        unitCfg(UnitId::Retire, 1000, 4, 16, 0.7f),
        unitCfg(UnitId::ClockTree, 120, 0, 0, 0.45f),
        unitCfg(UnitId::Misc, 700, 2, 16, 0.6f),
    };
    return cfg;
}

DesignConfig
DesignConfig::cortexA77ish()
{
    DesignConfig cfg;
    cfg.name = "cortex-a77ish";
    cfg.seed = 0xa77;
    cfg.nominalCoreGates = 6.0e6;
    cfg.nominalCorePower = 6.0e6 * 0.15;
    cfg.units = {
        unitCfg(UnitId::Fetch, 2000, 6, 16, 0.7f),
        unitCfg(UnitId::BranchPred, 2200, 4, 16, 0.8f),
        unitCfg(UnitId::ICache, 1800, 8, 32, 0.9f),
        unitCfg(UnitId::Decode, 2600, 6, 16, 0.8f),
        unitCfg(UnitId::Rename, 2200, 6, 16, 0.8f),
        unitCfg(UnitId::Issue, 5600, 12, 16, 1.2f),
        unitCfg(UnitId::IntAlu, 3000, 8, 32, 1.4f),
        unitCfg(UnitId::IntMulDiv, 1400, 4, 32, 1.6f),
        unitCfg(UnitId::VecExec, 5200, 16, 32, 2.2f),
        unitCfg(UnitId::RegFile, 2000, 8, 32, 1.4f),
        unitCfg(UnitId::Bypass, 1400, 6, 32, 1.2f),
        unitCfg(UnitId::LoadStore, 3800, 10, 32, 1.5f),
        unitCfg(UnitId::DCache, 2200, 8, 32, 1.4f),
        unitCfg(UnitId::L2Cache, 1800, 8, 32, 1.2f),
        unitCfg(UnitId::Retire, 1600, 4, 16, 0.7f),
        unitCfg(UnitId::ClockTree, 192, 0, 0, 0.45f),
        unitCfg(UnitId::Misc, 1000, 2, 16, 0.6f),
    };
    return cfg;
}

DesignConfig
DesignConfig::tiny()
{
    DesignConfig cfg;
    cfg.name = "tiny";
    cfg.seed = 0x717;
    cfg.nominalCoreGates = 3.0e5;
    cfg.nominalCorePower = 3.0e5 * 0.14;
    cfg.units = {
        unitCfg(UnitId::Fetch, 100, 1, 16, 0.7f),
        unitCfg(UnitId::BranchPred, 80, 0, 0, 0.7f),
        unitCfg(UnitId::ICache, 90, 1, 16, 0.9f),
        unitCfg(UnitId::Decode, 100, 1, 16, 0.8f),
        unitCfg(UnitId::Rename, 90, 0, 0, 0.8f),
        unitCfg(UnitId::Issue, 220, 2, 16, 1.2f),
        unitCfg(UnitId::IntAlu, 140, 1, 16, 1.4f),
        unitCfg(UnitId::IntMulDiv, 90, 1, 16, 1.6f),
        unitCfg(UnitId::VecExec, 200, 2, 16, 2.2f),
        unitCfg(UnitId::RegFile, 90, 1, 16, 1.4f),
        unitCfg(UnitId::Bypass, 70, 1, 16, 1.2f),
        unitCfg(UnitId::LoadStore, 180, 2, 16, 1.5f),
        unitCfg(UnitId::DCache, 110, 1, 16, 1.4f),
        unitCfg(UnitId::L2Cache, 90, 1, 16, 1.2f),
        unitCfg(UnitId::Retire, 80, 0, 0, 0.7f),
        unitCfg(UnitId::ClockTree, 12, 0, 0, 0.45f),
        unitCfg(UnitId::Misc, 60, 0, 0, 0.6f),
    };
    return cfg;
}

Netlist
DesignBuilder::build(const DesignConfig &config)
{
    APOLLO_REQUIRE(!config.units.empty(), "design has no units");
    Netlist netlist(config.name, config.seed);
    netlist.setNominals(config.nominalCoreGates, config.nominalCorePower);
    Xoshiro256StarStar rng(hashMix(config.seed));
    for (const UnitConfig &unit_cfg : config.units)
        buildUnit(netlist, unit_cfg, config.ffPerClockGate, rng);
    return netlist;
}

} // namespace apollo
