#include "rtl/netlist.hh"

#include <cstdio>

#include "util/logging.hh"

namespace apollo {

std::string
Netlist::signalName(size_t id) const
{
    APOLLO_REQUIRE(id < signals_.size(), "signal id ", id, " out of range");
    const Signal &sig = signals_[id];
    const UnitRange &range = unitRanges_[static_cast<size_t>(sig.unit)];
    const size_t local = id - range.first;

    const char *suffix = nullptr;
    switch (sig.kind) {
      case SignalKind::FlipFlop: suffix = "ff"; break;
      case SignalKind::CombWire: suffix = "wire"; break;
      case SignalKind::GatedClock: suffix = "gclk"; break;
      case SignalKind::ClockEnable: suffix = "clken"; break;
      case SignalKind::BusBit: suffix = "bus"; break;
      default: suffix = "sig"; break;
    }

    char buf[96];
    if (sig.kind == SignalKind::BusBit && sig.busId >= 0) {
        const Bus &owner = buses_[static_cast<size_t>(sig.busId)];
        std::snprintf(buf, sizeof(buf), "u_%s/%s%d[%zu]",
                      unitName(sig.unit), suffix, sig.busId,
                      id - owner.firstSignal);
    } else {
        std::snprintf(buf, sizeof(buf), "u_%s/%s_%zu", unitName(sig.unit),
                      suffix, local);
    }
    return buf;
}

} // namespace apollo
