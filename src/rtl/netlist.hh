/**
 * @file
 * Netlist: the full collection of RTL signals of a synthetic design,
 * grouped by functional unit, plus design-level constants (nominal gate
 * count and power used as denominators for OPM overhead accounting).
 */

#ifndef APOLLO_RTL_NETLIST_HH
#define APOLLO_RTL_NETLIST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/signal.hh"

namespace apollo {

/** A multi-bit bus: a contiguous range of BusBit signals. */
struct Bus
{
    uint32_t firstSignal = 0;
    uint32_t width = 0;
    /** Probability scale of a bus-level event when the unit is active. */
    float eventSensitivity = 0.7f;
};

/** Contiguous signal-id range [first, first+count) belonging to a unit. */
struct UnitRange
{
    uint32_t first = 0;
    uint32_t count = 0;
};

/**
 * The design netlist. Signal ids are dense [0, signalCount()).
 *
 * The synthetic netlist *samples* a commercial-scale design's signals:
 * nominalCoreGates()/nominalCorePower() carry the full-design scale used
 * when reporting OPM area/power overhead percentages (see DESIGN.md §2).
 */
class Netlist
{
  public:
    Netlist() = default;
    Netlist(std::string name, uint64_t seed) : name_(std::move(name)),
        seed_(seed)
    {}

    const std::string &name() const { return name_; }
    uint64_t seed() const { return seed_; }

    size_t signalCount() const { return signals_.size(); }
    const Signal &signal(size_t id) const { return signals_[id]; }
    const std::vector<Signal> &signals() const { return signals_; }

    const std::vector<Bus> &buses() const { return buses_; }
    const Bus &bus(size_t id) const { return buses_[id]; }

    const UnitRange &unitRange(UnitId unit) const
    {
        return unitRanges_[static_cast<size_t>(unit)];
    }

    /** Hierarchical name of a signal, e.g. "u_issue/wake_ff_123". */
    std::string signalName(size_t id) const;

    /** Total capacitance over all signals (used by power scaling). */
    double totalCap() const { return totalCap_; }

    /** Full-design gate count the netlist stands in for (GE). */
    double nominalCoreGates() const { return nominalCoreGates_; }
    /** Full-design average power at nominal voltage/frequency. */
    double nominalCorePower() const { return nominalCorePower_; }

    /** Builder-facing mutators. */
    void setNominals(double gates, double power)
    {
        nominalCoreGates_ = gates;
        nominalCorePower_ = power;
    }

    uint32_t
    addSignal(const Signal &sig)
    {
        signals_.push_back(sig);
        totalCap_ += sig.cap;
        return static_cast<uint32_t>(signals_.size() - 1);
    }

    uint32_t
    addBus(const Bus &bus)
    {
        buses_.push_back(bus);
        return static_cast<uint32_t>(buses_.size() - 1);
    }

    void setUnitRange(UnitId unit, UnitRange range)
    {
        unitRanges_[static_cast<size_t>(unit)] = range;
    }

  private:
    std::string name_;
    uint64_t seed_ = 0;
    std::vector<Signal> signals_;
    std::vector<Bus> buses_;
    UnitRange unitRanges_[numUnits];
    double totalCap_ = 0.0;
    double nominalCoreGates_ = 0.0;
    double nominalCorePower_ = 0.0;
};

} // namespace apollo

#endif // APOLLO_RTL_NETLIST_HH
