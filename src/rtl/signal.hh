/**
 * @file
 * RTL signal model: the atomic unit APOLLO selects power proxies from.
 *
 * Each signal carries the static properties that drive both its toggle
 * behaviour (via the activity engine) and its power contribution (via the
 * power oracle): the functional unit it belongs to, its kind, its
 * effective switched capacitance, and sensitivities to unit activity and
 * data values.
 */

#ifndef APOLLO_RTL_SIGNAL_HH
#define APOLLO_RTL_SIGNAL_HH

#include <cstdint>
#include <string>

namespace apollo {

/**
 * Functional units of the synthetic core. These mirror the unit taxonomy
 * of Fig. 15(a) in the paper (Fetch, Issue, Vector Execution, Load Store,
 * gated clocks, ...), plus the cache hierarchy the uarch model simulates.
 */
enum class UnitId : uint8_t
{
    Fetch,
    BranchPred,
    ICache,
    Decode,
    Rename,
    Issue,
    IntAlu,
    IntMulDiv,
    VecExec,
    RegFile,
    Bypass,
    LoadStore,
    DCache,
    L2Cache,
    Retire,
    ClockTree,
    Misc,
    NumUnits,
};

/** Number of functional units. */
constexpr size_t numUnits = static_cast<size_t>(UnitId::NumUnits);

/** Short unit name for reports (e.g. Fig. 15(a) distribution). */
const char *unitName(UnitId unit);

/** Kinds of RTL signals, following §6's OPM interface taxonomy. */
enum class SignalKind : uint8_t
{
    FlipFlop,    ///< register output
    CombWire,    ///< combinational net
    GatedClock,  ///< gated clock net (toggles when its enable is high)
    ClockEnable, ///< clock-gate enable (toggles when gating state changes)
    BusBit,      ///< one bit of a multi-bit bus (correlated toggling)
};

/** Name of a signal kind for reports. */
const char *signalKindName(SignalKind kind);

/**
 * Static per-signal properties. Kept compact (the netlist holds tens of
 * thousands of these; the real designs the paper targets hold >5e5).
 */
struct Signal
{
    UnitId unit = UnitId::Misc;
    SignalKind kind = SignalKind::CombWire;
    /** Effective switched capacitance (arbitrary femtofarad-like units). */
    float cap = 1.0f;
    /** How strongly toggle probability follows unit activity, [0, 1]. */
    float actSensitivity = 0.5f;
    /** How strongly toggle probability follows data toggling, [0, 1]. */
    float dataSensitivity = 0.0f;
    /** Background toggle probability when the unit clock is enabled. */
    float baseRate = 0.0f;
    /** Pipeline delay (cycles) between unit activity and this signal. */
    uint8_t latency = 0;
    /** Combinational depth; scales the glitch-power contribution. */
    uint8_t glitchDepth = 0;
    /** Bus membership (index into Netlist::buses()), or -1. */
    int32_t busId = -1;
};

} // namespace apollo

#endif // APOLLO_RTL_SIGNAL_HH
