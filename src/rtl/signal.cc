#include "rtl/signal.hh"

namespace apollo {

const char *
unitName(UnitId unit)
{
    switch (unit) {
      case UnitId::Fetch: return "Fetch";
      case UnitId::BranchPred: return "BranchPred";
      case UnitId::ICache: return "ICache";
      case UnitId::Decode: return "Decode";
      case UnitId::Rename: return "Rename";
      case UnitId::Issue: return "Issue";
      case UnitId::IntAlu: return "IntAlu";
      case UnitId::IntMulDiv: return "IntMulDiv";
      case UnitId::VecExec: return "VecExec";
      case UnitId::RegFile: return "RegFile";
      case UnitId::Bypass: return "Bypass";
      case UnitId::LoadStore: return "LoadStore";
      case UnitId::DCache: return "DCache";
      case UnitId::L2Cache: return "L2Cache";
      case UnitId::Retire: return "Retire";
      case UnitId::ClockTree: return "ClockTree";
      case UnitId::Misc: return "Misc";
      default: return "?";
    }
}

const char *
signalKindName(SignalKind kind)
{
    switch (kind) {
      case SignalKind::FlipFlop: return "FlipFlop";
      case SignalKind::CombWire: return "CombWire";
      case SignalKind::GatedClock: return "GatedClock";
      case SignalKind::ClockEnable: return "ClockEnable";
      case SignalKind::BusBit: return "BusBit";
      default: return "?";
    }
}

} // namespace apollo
