#!/usr/bin/env bash
# Time-boxed fuzzing of the untrusted-input parsers (APTR proxy
# traces, VCD dumps, dataset streams). Each target replays the checked
# in corpus in tests/corpus/<target>/ and then runs seeded random
# mutations until its time budget expires; any crash, sanitizer
# report, or uncaught exception aborts with a FUZZ-BUG line carrying
# the replay seed (docs/INTERNALS.md section 8).
#
# Usage: tools/run_fuzz.sh [seconds-per-target] [target...]
#   tools/run_fuzz.sh              # 60s each: aptr, vcd, dataset, packed
#   tools/run_fuzz.sh 300 vcd      # 5 minutes on the VCD parser only
#
# Environment:
#   BUILD_DIR          build tree (default: build-asan, built with
#                      APOLLO_SANITIZE=ON so UB surfaces as a report)
#   APOLLO_FUZZ_SEED   base seed (default: fixed; vary for new paths)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-asan}
SECONDS_PER_TARGET=${1:-60}
shift || true
TARGETS=("$@")
[[ ${#TARGETS[@]} -gt 0 ]] || TARGETS=(aptr vcd dataset packed)

cmake -B "$BUILD_DIR" -S . -DAPOLLO_SANITIZE=ON
for t in "${TARGETS[@]}"; do
    cmake --build "$BUILD_DIR" -j --target "fuzz_$t"
done

for t in "${TARGETS[@]}"; do
    echo "=== fuzz_$t: corpus replay + ${SECONDS_PER_TARGET}s of mutations ==="
    APOLLO_FUZZ_SECONDS="$SECONDS_PER_TARGET" \
        "$BUILD_DIR/tests/fuzz_$t" "tests/corpus/$t"
done
echo "fuzz run clean"
