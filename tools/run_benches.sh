#!/usr/bin/env bash
# Regenerate the perf trajectories at the repo root:
#   BENCH_solver.json  — MCP solver fast-path layers
#   BENCH_stream.json  — streaming pipeline vs batch (throughput + RSS)
#   BENCH_ga.json      — GA training-data pipeline layers
#   BENCH_serve.json   — multi-session serving grid (sessions x threads)
#   BENCH_control.json — closed-loop droop-mitigation lab Pareto sweep
# Usage: tools/run_benches.sh [--smoke] [extra bench args...]
#
# Environment:
#   BUILD_DIR   build tree to use (default: build)
#   APOLLO_NATIVE=1 configures the build with -march=native kernels.
#   APOLLO_OBS_OFF_DIR  compiled-out observability tree (default:
#               build-obs-off). Both observability configurations are
#               built every run; the OFF tree runs the solver bench in
#               smoke mode to prove the instrumented hot paths still
#               compile and run with APOLLO_OBS=0.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

cmake_flags=()
if [[ "${APOLLO_NATIVE:-0}" == "1" ]]; then
    cmake_flags+=(-DAPOLLO_NATIVE=ON)
fi

cmake -B "$BUILD_DIR" -S . "${cmake_flags[@]}"
cmake --build "$BUILD_DIR" -j --target bench_perf_solver \
    --target bench_stream_infer --target bench_perf_ga \
    --target bench_obs_overhead --target bench_serve \
    --target bench_droop_lab

# Full recordings include the paper-scale out-of-core phase (M=500k
# sharded selection: RSS bound + shard/thread identity grid). Smoke
# runs skip it here — `bench_perf_solver --huge --smoke` writes only
# the out-of-core section, and that path is already guarded by the
# perf.solver_huge ctest.
solver_args=(--huge)
for arg in "$@"; do
    if [[ "$arg" == "--smoke" ]]; then
        solver_args=()
    fi
done
"$BUILD_DIR"/bench/bench_perf_solver "${solver_args[@]}" \
    --out=BENCH_solver.json "$@"
echo "BENCH_solver.json updated"

"$BUILD_DIR"/bench/bench_stream_infer --out=BENCH_stream.json "$@"
echo "BENCH_stream.json updated"

"$BUILD_DIR"/bench/bench_perf_ga --out=BENCH_ga.json "$@"
echo "BENCH_ga.json updated"

"$BUILD_DIR"/bench/bench_obs_overhead --out=BENCH_obs_overhead.json "$@"
echo "BENCH_obs_overhead.json updated"

"$BUILD_DIR"/bench/bench_serve --out=BENCH_serve.json "$@"
echo "BENCH_serve.json updated"

"$BUILD_DIR"/bench/bench_droop_lab --out=BENCH_control.json "$@"
echo "BENCH_control.json updated"

# Closed-loop droop-lab guard: re-run through ctest so the perf label
# stays green on the same tree (coverage + dominance + thread-count
# determinism gates).
(cd "$BUILD_DIR" && ctest -R 'perf\.droop_lab' --output-on-failure)
echo "perf.droop_lab guard passed"

# Bit-parallel kernel ablation guard: re-run through ctest so the perf
# label stays green on the same tree the benches used (scalar / AVX2 /
# VPOPCNTQ / legacy all bit-identical to the batch simulator).
(cd "$BUILD_DIR" && ctest -R 'perf\.stream_bitparallel' --output-on-failure)
echo "perf.stream_bitparallel guard passed"

# Cross-check the compiled-out configuration: the same hot paths must
# build and run with every APOLLO_COUNT/SPAN macro expanded to nothing.
OBS_OFF_DIR=${APOLLO_OBS_OFF_DIR:-build-obs-off}
cmake -B "$OBS_OFF_DIR" -S . "${cmake_flags[@]}" -DAPOLLO_OBS=OFF
cmake --build "$OBS_OFF_DIR" -j --target bench_perf_solver \
    --target bench_obs_overhead
"$OBS_OFF_DIR"/bench/bench_perf_solver --smoke \
    --out="$OBS_OFF_DIR"/BENCH_solver_obs_off.json
"$OBS_OFF_DIR"/bench/bench_obs_overhead --smoke \
    --out="$OBS_OFF_DIR"/BENCH_obs_overhead_off.json
echo "APOLLO_OBS=OFF configuration builds and runs clean"
