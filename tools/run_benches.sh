#!/usr/bin/env bash
# Regenerate the solver perf trajectory (BENCH_solver.json at the repo
# root). Usage: tools/run_benches.sh [--smoke] [extra bench args...]
#
# Environment:
#   BUILD_DIR   build tree to use (default: build)
#   APOLLO_NATIVE=1 configures the build with -march=native kernels.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

cmake_flags=()
if [[ "${APOLLO_NATIVE:-0}" == "1" ]]; then
    cmake_flags+=(-DAPOLLO_NATIVE=ON)
fi

cmake -B "$BUILD_DIR" -S . "${cmake_flags[@]}"
cmake --build "$BUILD_DIR" -j --target bench_perf_solver

"$BUILD_DIR"/bench/bench_perf_solver --out=BENCH_solver.json "$@"
echo "BENCH_solver.json updated"
