#!/usr/bin/env bash
# Build with ASan+UBSan and run the test suite (default: the streaming
# pipeline suites, which exercise the chunked readers, the parallel
# engine, and the Status error paths end to end).
#
# Usage: tools/run_sanitize.sh [ctest args...]
#   tools/run_sanitize.sh                 # streaming suites only
#   tools/run_sanitize.sh -R '.*'         # everything under sanitizers
#
# Environment:
#   BUILD_DIR   sanitizer build tree (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DAPOLLO_SANITIZE=ON
cmake --build "$BUILD_DIR" -j --target apollo_tests

if [[ $# -gt 0 ]]; then
    ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
else
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R \
        'SliceRows|StreamInfer|StreamSinks|ProxyTraceFormat|VcdStreaming|LoaderStatus|PublicApi|EmulatorFlow'
fi
echo "sanitizer run clean"
