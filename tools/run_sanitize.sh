#!/usr/bin/env bash
# Build with ASan+UBSan and run the test suite (default: the streaming
# pipeline suites, which exercise the chunked readers, the parallel
# engine, and the Status error paths end to end).
#
# Usage: tools/run_sanitize.sh [ctest args...]
#   tools/run_sanitize.sh                 # streaming suites only
#   tools/run_sanitize.sh -R '.*'         # everything under sanitizers
#
# Environment:
#   BUILD_DIR   sanitizer build tree (default: build-asan)
#   APOLLO_OBS=OFF  sanitize the compiled-out observability
#               configuration instead (tree: ${BUILD_DIR}-obs-off),
#               proving the instrumented hot paths are clean in both
#               builds.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-asan}

obs_flags=()
if [[ "${APOLLO_OBS:-ON}" == "OFF" ]]; then
    BUILD_DIR="${BUILD_DIR}-obs-off"
    obs_flags+=(-DAPOLLO_OBS=OFF)
fi

cmake -B "$BUILD_DIR" -S . -DAPOLLO_SANITIZE=ON "${obs_flags[@]}"
cmake --build "$BUILD_DIR" -j --target apollo_tests \
    --target apollo_oracle_tests \
    --target fuzz_aptr --target fuzz_vcd --target fuzz_dataset

if [[ $# -gt 0 ]]; then
    ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
else
    # Streaming suites plus the differential-oracle layer (label
    # "oracle": every production path vs its reference under
    # ASan+UBSan) and the corpus-replay fuzz drivers (label "fuzz").
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R \
        'SliceRows|StreamInfer|StreamSinks|ProxyTraceFormat|VcdStreaming|LoaderStatus|PublicApi|EmulatorFlow|OracleEdges|OracleRegression|AptrStatus|VcdStatus|DatasetStatus|GaPipeline|GaConfigValidate|GenerateTrainingSet|HashKernels|DatasetBuilderAddFrames|MetricRegistry|TraceCollector|ObsEndToEnd|Droop|MultiCycle|Quantize'
    ctest --test-dir "$BUILD_DIR" --output-on-failure -L 'oracle|fuzz'
fi
echo "sanitizer run clean"
