#!/usr/bin/env bash
# Build with ASan+UBSan and run the test suite (default: the streaming
# pipeline suites, which exercise the chunked readers, the parallel
# engine, and the Status error paths end to end).
#
# Usage: tools/run_sanitize.sh [ctest args...]
#   tools/run_sanitize.sh                 # streaming suites only
#   tools/run_sanitize.sh -R '.*'         # everything under sanitizers
#
# Environment:
#   BUILD_DIR   sanitizer build tree (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DAPOLLO_SANITIZE=ON
cmake --build "$BUILD_DIR" -j --target apollo_tests \
    --target apollo_oracle_tests \
    --target fuzz_aptr --target fuzz_vcd --target fuzz_dataset

if [[ $# -gt 0 ]]; then
    ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
else
    # Streaming suites plus the differential-oracle layer (label
    # "oracle": every production path vs its reference under
    # ASan+UBSan) and the corpus-replay fuzz drivers (label "fuzz").
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R \
        'SliceRows|StreamInfer|StreamSinks|ProxyTraceFormat|VcdStreaming|LoaderStatus|PublicApi|EmulatorFlow|OracleEdges|OracleRegression|AptrStatus|VcdStatus|DatasetStatus|GaPipeline|GaConfigValidate|GenerateTrainingSet|HashKernels|DatasetBuilderAddFrames'
    ctest --test-dir "$BUILD_DIR" --output-on-failure -L 'oracle|fuzz'
fi
echo "sanitizer run clean"
