#!/usr/bin/env bash
# Build under a sanitizer and run the test suite (default: the
# streaming + serving suites, which exercise the chunked readers, the
# parallel engine, the multi-session manager, and the Status error
# paths end to end).
#
# Usage: tools/run_sanitize.sh [ctest args...]
#   tools/run_sanitize.sh                 # default suites
#   tools/run_sanitize.sh -R '.*'         # everything under sanitizers
#   SANITIZER=tsan tools/run_sanitize.sh  # ThreadSanitizer instead
#
# Environment:
#   SANITIZER   asan (default: ASan+UBSan, tree build-asan) or tsan
#               (ThreadSanitizer, tree build-tsan). The tsan run is
#               what validates the serving layer's locking: the
#               multi-session determinism suite drives 8 sessions
#               over pools of 1/2/8 workers under it.
#   BUILD_DIR   sanitizer build tree (default: build-${SANITIZER})
#   APOLLO_OBS=OFF  sanitize the compiled-out observability
#               configuration instead (tree: ${BUILD_DIR}-obs-off),
#               proving the instrumented hot paths are clean in both
#               builds.
set -euo pipefail

cd "$(dirname "$0")/.."
SANITIZER=${SANITIZER:-asan}
case "$SANITIZER" in
    asan) san_flags=(-DAPOLLO_SANITIZE=ON) ;;
    tsan) san_flags=(-DAPOLLO_TSAN=ON) ;;
    *) echo "unknown SANITIZER '$SANITIZER' (want asan or tsan)" >&2
       exit 2 ;;
esac
BUILD_DIR=${BUILD_DIR:-build-${SANITIZER}}

obs_flags=()
if [[ "${APOLLO_OBS:-ON}" == "OFF" ]]; then
    BUILD_DIR="${BUILD_DIR}-obs-off"
    obs_flags+=(-DAPOLLO_OBS=OFF)
fi

cmake -B "$BUILD_DIR" -S . "${san_flags[@]}" "${obs_flags[@]}"
cmake --build "$BUILD_DIR" -j --target apollo_tests \
    --target apollo_oracle_tests \
    --target fuzz_aptr --target fuzz_vcd --target fuzz_dataset \
    --target fuzz_packed

if [[ $# -gt 0 ]]; then
    ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
elif [[ "$SANITIZER" == "tsan" ]]; then
    # TSan focuses on the threaded paths: the serving layer, the
    # parallel streaming engine, the threaded GA pipeline, the sharded
    # screen/solve (mmap readers fanned over the worker pool), and the
    # droop lab's scenario fan-out.
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R \
        'ServeRegistry|ServeSessions|ServeDeterminism|ServeBackpressure|ServeCancel|ServeWire|ServeLoop|StreamInfer|StreamSinks|GaPipeline|ShardStoreFormat|ShardedSolver|ShardedSelect|ControlClosedLoop|DroopLab'
else
    # Streaming + serving suites plus the differential-oracle layer
    # (label "oracle": every production path vs its reference under
    # ASan+UBSan) and the corpus-replay fuzz drivers (label "fuzz").
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R \
        'SliceRows|StreamInfer|StreamSinks|ProxyTraceFormat|VcdStreaming|LoaderStatus|PublicApi|EmulatorFlow|OracleEdges|OracleRegression|AptrStatus|VcdStatus|DatasetStatus|GaPipeline|GaConfigValidate|GenerateTrainingSet|HashKernels|DatasetBuilderAddFrames|MetricRegistry|TraceCollector|ObsEndToEnd|Droop|MultiCycle|Quantize|Control|ServeRegistry|ServeSessions|ServeDeterminism|ServeBackpressure|ServeCancel|ServeWire|ServeLoop|ShardStoreFormat|ShardedSolver|ShardedSelect|ShardCountViewMoments|ShardDatasetStreamWriter'
    ctest --test-dir "$BUILD_DIR" --output-on-failure -L 'oracle|fuzz'
fi
echo "sanitizer run clean (${SANITIZER})"
