/**
 * @file
 * Regenerates the checked-in fuzz seed corpus (tests/corpus/): small
 * valid APTR / VCD / APDS artifacts plus systematically malformed
 * variants (truncations at interesting offsets, bad magics, absurd
 * declared sizes). Deterministic — running it twice produces identical
 * bytes, so the corpus only changes when the formats do.
 *
 * Usage: make_corpus <output-dir>
 */

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/dataset.hh"
#include "trace/dataset_io.hh"
#include "trace/stream_reader.hh"
#include "util/bitvec.hh"
#include "util/rng.hh"

namespace fs = std::filesystem;
using namespace apollo;

namespace {

void
writeFile(const fs::path &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    std::printf("  %s (%zu bytes)\n", path.string().c_str(),
                bytes.size());
}

std::string
patch(std::string bytes, size_t at, const void *data, size_t len)
{
    bytes.replace(at, len,
                  std::string(static_cast<const char *>(data), len));
    return bytes;
}

void
makeAptrCorpus(const fs::path &dir)
{
    Xoshiro256StarStar rng(hashMix(0xa9712));
    BitColumnMatrix Xq(37, 3);
    for (size_t c = 0; c < Xq.cols(); ++c)
        for (size_t r = 0; r < Xq.rows(); ++r)
            if (rng.nextDouble() < 0.3)
                Xq.setBit(r, c);

    std::ostringstream one_block;
    {
        ProxyTraceWriter w(one_block, Xq.cols());
        (void)w.append(Xq);
        (void)w.finish();
    }
    const std::string valid = one_block.str();
    writeFile(dir / "valid_small.aptr", valid);

    std::ostringstream multi;
    {
        ProxyTraceWriter w(multi, Xq.cols());
        BitColumnMatrix block(8, Xq.cols());
        for (size_t begin = 0; begin < Xq.rows(); begin += 8) {
            const size_t rows = std::min<size_t>(8, Xq.rows() - begin);
            block.reset(rows, Xq.cols());
            for (size_t c = 0; c < Xq.cols(); ++c)
                for (size_t r = 0; r < rows; ++r)
                    if (Xq.get(begin + r, c))
                        block.setBit(r, c);
            (void)w.append(block);
        }
        (void)w.finish();
    }
    writeFile(dir / "valid_multiblock.aptr", multi.str());

    writeFile(dir / "empty.aptr", "");
    writeFile(dir / "trunc_header.aptr", valid.substr(0, 7));
    writeFile(dir / "trunc_midblock.aptr",
              valid.substr(0, valid.size() * 3 / 5));
    writeFile(dir / "no_terminator.aptr",
              valid.substr(0, valid.size() - 4));
    writeFile(dir / "bad_magic.aptr", "XPTR" + valid.substr(4));

    // Header fields: "APTR" u32 version u32 q u64 cycles.
    const uint32_t huge_q = 0x7fffffffu;
    writeFile(dir / "huge_q.aptr", patch(valid, 8, &huge_q, 4));
    const uint64_t huge_cycles = ~uint64_t{0};
    writeFile(dir / "huge_cycles.aptr",
              patch(valid, 12, &huge_cycles, 8));
    // First block row count (u32 right after the 20-byte header).
    const uint32_t huge_rows = 0xffffffffu;
    writeFile(dir / "huge_block_rows.aptr",
              patch(valid, 20, &huge_rows, 4));
}

void
makeVcdCorpus(const fs::path &dir)
{
    const std::string header = "$timescale 1ns $end\n"
                               "$scope module top $end\n"
                               "$var wire 1 ! sig_a $end\n"
                               "$var wire 1 \" sig_b $end\n"
                               "$upscope $end\n"
                               "$enddefinitions $end\n"
                               "$dumpvars\n0!\n0\"\n$end\n";
    const std::string body = "#0\n1!\n#1\n0!\n1\"\n#2\n1!\n#5\n0\"\n#6\n";
    writeFile(dir / "valid_small.vcd", header + body);
    writeFile(dir / "empty.vcd", "");
    writeFile(dir / "no_vars.vcd", "$enddefinitions $end\n#0\n#1\n");
    writeFile(dir / "unknown_id.vcd", header + "#0\n1%\n#2\n");
    writeFile(dir / "backwards_ts.vcd", header + "#4\n1!\n#2\n0!\n#6\n");
    writeFile(dir / "huge_ts.vcd",
              header + "#0\n1!\n#18446744073709551615\n0!\n");
    writeFile(dir / "big_gap_ts.vcd",
              header + "#0\n1!\n#4294968000\n0!\n#4294969000\n");
    writeFile(dir / "trunc_mid_token.vcd",
              header + "#0\n1!\n#1\n1");
    writeFile(dir / "bad_ts.vcd", header + "#zzz\n1!\n");
    writeFile(dir / "header_only.vcd", header);
}

void
makeDatasetCorpus(const fs::path &dir)
{
    Xoshiro256StarStar rng(hashMix(0xa9d5));
    Dataset ds;
    ds.X.reset(24, 5);
    for (size_t c = 0; c < 5; ++c)
        for (size_t r = 0; r < 24; ++r)
            if (rng.nextDouble() < 0.4)
                ds.X.setBit(r, c);
    ds.y.resize(24);
    for (float &v : ds.y)
        v = static_cast<float>(rng.nextRange(0.0, 3.0));
    ds.segments = {{"warm", 0, 10}, {"hot", 10, 24}};

    std::ostringstream os;
    saveDataset(os, ds);
    const std::string valid = os.str();
    writeFile(dir / "valid_small.apds", valid);
    writeFile(dir / "empty.apds", "");
    writeFile(dir / "bad_magic.apds", "XPDS" + valid.substr(4));
    writeFile(dir / "trunc_header.apds", valid.substr(0, 9));
    writeFile(dir / "trunc_matrix.apds",
              valid.substr(0, valid.size() / 3));
    writeFile(dir / "trunc_labels.apds",
              valid.substr(0, valid.size() * 2 / 3));
    writeFile(dir / "trunc_tail.apds",
              valid.substr(0, valid.size() - 3));

    // Header: "APDS" u32 version u64 rows u64 cols.
    const uint64_t huge = ~uint64_t{0} / 2;
    writeFile(dir / "huge_rows.apds", patch(valid, 8, &huge, 8));
    writeFile(dir / "huge_cols.apds", patch(valid, 16, &huge, 8));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: make_corpus <output-dir>\n");
        return 2;
    }
    const fs::path root(argv[1]);
    for (const char *sub : {"aptr", "vcd", "dataset"})
        fs::create_directories(root / sub);
    makeAptrCorpus(root / "aptr");
    makeVcdCorpus(root / "vcd");
    makeDatasetCorpus(root / "dataset");
    return 0;
}
