/**
 * @file
 * apollo — command-line driver for the whole framework, so each stage
 * of the paper's flow (Fig. 2) can be run and inspected as a separate
 * artifact-producing step:
 *
 *   apollo gen-data  --design n1ish --out train.apds [--ga] ...
 *   apollo gen-test  --design n1ish --out test.apds
 *   apollo train     --data train.apds --q 159 --out model.txt
 *   apollo eval      --model model.txt --data test.apds
 *   apollo opm       --model model.txt --design n1ish --bits 10
 *                    [--window 32] [--emit opm.hh]
 *   apollo trace     --model model.txt --design n1ish --cycles 1000000
 *                    [--out trace.csv]
 *   apollo droop-lab --model model.txt --design n1ish [--cycles 3000]
 *                    [--out report.json]
 *   apollo serve     --model model.txt [--bits 10] [--in reqs.ndjson]
 *                    [--record dir] [--replay dir/s0.ndjson]
 *   apollo serve-gen --model model.txt --sessions 4 --chunks 8
 *                    --out reqs.ndjson
 *
 * Run `apollo help` for the full usage text.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "apollo.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace apollo;

namespace {

/** Tiny flag parser: --key value pairs after the subcommand. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i + 1 < argc; i += 2) {
            APOLLO_REQUIRE(std::strncmp(argv[i], "--", 2) == 0,
                           "expected --flag, got ", argv[i]);
            values_[argv[i] + 2] = argv[i + 1];
        }
        if ((argc - first) % 2 != 0)
            fatal("dangling flag: ", argv[argc - 1]);
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    long
    getInt(const std::string &key, long fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::stol(it->second);
    }

    bool
    getBool(const std::string &key) const
    {
        const std::string v = get(key, "0");
        return v == "1" || v == "true" || v == "yes";
    }

  private:
    std::map<std::string, std::string> values_;
};

DesignConfig
designByName(const std::string &name)
{
    if (name == "tiny")
        return DesignConfig::tiny();
    if (name == "n1ish")
        return DesignConfig::neoverseN1ish();
    if (name == "a77ish")
        return DesignConfig::cortexA77ish();
    fatal("unknown design '", name, "' (tiny | n1ish | a77ish)");
}

int
cmdGenData(const Args &args)
{
    const Netlist netlist =
        DesignBuilder::build(designByName(args.get("design", "tiny")));
    const auto n_benchmarks =
        static_cast<size_t>(args.getInt("benchmarks", 30));
    const auto cycles =
        static_cast<uint64_t>(args.getInt("cycles", 400));
    const std::string out = args.get("out", "train.apds");

    DatasetBuilder builder(netlist);
    if (args.getBool("ga")) {
        std::fprintf(stderr, "running the GA generator...\n");
        TrainingGenOptions opts;
        opts.ga.populationSize =
            static_cast<uint32_t>(args.getInt("population", 24));
        opts.ga.generations =
            static_cast<uint32_t>(args.getInt("generations", 8));
        opts.ga.fitnessSignalStride = 4;
        opts.benchmarks = n_benchmarks;
        opts.cyclesEach = cycles;
        StatusOr<TrainingGenReport> report =
            generateTrainingSet(netlist, opts);
        if (!report.ok())
            fatal(report.status().toString());
        std::fprintf(stderr,
                     "GA power range ratio: %.2fx (cache hit rate "
                     "%.1f%%)\n",
                     report->powerRangeRatio,
                     100.0 * report->gaStats.hitRate());
        const Dataset ds = report->dataset;
        saveDatasetFile(out, ds);
        std::printf("wrote %s: %zu cycles x %zu signals (%zu "
                    "benchmarks, mean power %.4f)\n",
                    out.c_str(), ds.cycles(), ds.signals(),
                    ds.segments.size(), ds.meanLabel());
        return 0;
    }
    {
        Xoshiro256StarStar rng(
            static_cast<uint64_t>(args.getInt("seed", 42)));
        for (size_t i = 0; i < n_benchmarks; ++i) {
            builder.addProgram(
                Program::makeLoop("rand" + std::to_string(i),
                                  GaGenerator::randomBody(rng, 6, 26),
                                  8000, rng()),
                cycles);
        }
    }
    const Dataset ds = builder.build();
    saveDatasetFile(out, ds);
    std::printf("wrote %s: %zu cycles x %zu signals (%zu benchmarks, "
                "mean power %.4f)\n",
                out.c_str(), ds.cycles(), ds.signals(),
                ds.segments.size(), ds.meanLabel());
    return 0;
}

int
cmdGenTest(const Args &args)
{
    const Netlist netlist =
        DesignBuilder::build(designByName(args.get("design", "tiny")));
    const std::string out = args.get("out", "test.apds");
    DatasetBuilder builder(netlist);
    for (const TestBenchmark &bench : designerTestSuite())
        builder.addProgram(bench.program, bench.cycles, bench.throttle);
    const Dataset ds = builder.build();
    saveDatasetFile(out, ds);
    std::printf("wrote %s: the 12 designer benchmarks, %zu cycles\n",
                out.c_str(), ds.cycles());
    return 0;
}

int
cmdTrain(const Args &args)
{
    const Dataset train =
        loadDatasetFile(args.get("data", "train.apds"));
    const std::string out = args.get("out", "model.txt");

    ApolloTrainConfig cfg;
    cfg.selection.targetQ = static_cast<size_t>(args.getInt("q", 159));
    cfg.selection.gamma =
        static_cast<double>(args.getInt("gamma", 10));
    if (args.getBool("lasso"))
        cfg.selection.kind = PenaltyKind::Lasso;

    const ApolloTrainResult res =
        trainApollo(train, cfg, args.get("design-name", "design"));
    std::ofstream os(out);
    res.model.save(os);
    std::printf("trained Q=%zu model in %.1fs selection + %.1fs "
                "relaxation (lambda=%.5g); wrote %s\n",
                res.model.proxyCount(), res.selectSeconds,
                res.relaxSeconds, res.selection.diagnostics.lambda,
                out.c_str());
    return 0;
}

int
cmdEval(const Args &args)
{
    std::ifstream is(args.get("model", "model.txt"));
    APOLLO_REQUIRE(is.is_open(), "cannot open model file");
    const ApolloModel model = ApolloModel::load(is);
    const Dataset test = loadDatasetFile(args.get("data", "test.apds"));

    const auto pred = model.predictFull(test.X);
    std::printf("%-16s %8s %8s %8s\n", "benchmark", "NRMSE", "NMAE",
                "mean");
    for (const SegmentInfo &seg : test.segments) {
        std::vector<float> y(test.y.begin() + seg.begin,
                             test.y.begin() + seg.end);
        std::vector<float> p(pred.begin() + seg.begin,
                             pred.begin() + seg.end);
        std::printf("%-16s %7.2f%% %7.2f%% %8.4f\n", seg.name.c_str(),
                    100.0 * nrmse(y, p), 100.0 * nmae(y, p), mean(y));
    }
    std::printf("overall: R2=%.4f NRMSE=%.2f%% NMAE=%.2f%% (Q=%zu)\n",
                r2Score(test.y, pred), 100.0 * nrmse(test.y, pred),
                100.0 * nmae(test.y, pred), model.proxyCount());
    return 0;
}

int
cmdOpm(const Args &args)
{
    std::ifstream is(args.get("model", "model.txt"));
    APOLLO_REQUIRE(is.is_open(), "cannot open model file");
    const ApolloModel model = ApolloModel::load(is);
    const Netlist netlist =
        DesignBuilder::build(designByName(args.get("design", "tiny")));
    const auto bits = static_cast<uint32_t>(args.getInt("bits", 10));
    const auto window =
        static_cast<uint32_t>(args.getInt("window", 32));

    const QuantizedModel qm = quantizeModel(model, bits);
    const OpmHardwareReport rep =
        analyzeOpmHardware(netlist, qm, window, 0.15);
    std::printf("OPM configuration: Q=%zu, B=%u, T=%u\n",
                qm.proxyCount(), bits, window);
    std::printf("area: %.0f GE (interface %.0f, compute %.0f, "
                "accumulate %.0f, routing %.0f) = %.3f%% of core\n",
                rep.totalGE, rep.interfaceGE, rep.computeGE,
                rep.accumGE, rep.routingGE, 100.0 * rep.areaOverhead);
    std::printf("power overhead: %.2f%% (logic %.2f%% + routing "
                "%.2f%%); latency %u cycles\n",
                100.0 * rep.totalPowerOverhead,
                100.0 * rep.logicPowerOverhead,
                100.0 * rep.routingPowerOverhead, rep.latencyCycles);

    const std::string emit = args.get("emit");
    if (!emit.empty()) {
        std::ofstream os(emit);
        os << emitOpmHlsSource(qm, window);
        std::printf("wrote HLS-style OPM source to %s\n", emit.c_str());
    }
    return 0;
}

int
cmdTrace(const Args &args)
{
    std::ifstream is(args.get("model", "model.txt"));
    APOLLO_REQUIRE(is.is_open(), "cannot open model file");
    const ApolloModel model = ApolloModel::load(is);
    const Netlist netlist =
        DesignBuilder::build(designByName(args.get("design", "tiny")));
    const auto cycles =
        static_cast<uint64_t>(args.getInt("cycles", 100000));

    DesignTimeFlows flows(netlist);
    const Program workload = makeLongWorkload(
        "workload", cycles * 2,
        static_cast<uint64_t>(args.getInt("seed", 9)));
    const FlowReport rep =
        flows.runEmulatorFlow(workload, cycles, model);
    std::printf("emulator-assisted trace: %llu cycles in %.2fs "
                "(%.0f kcycles/s), %.2f MB proxy trace\n",
                static_cast<unsigned long long>(rep.cycles),
                rep.totalSeconds(),
                rep.cycles / rep.totalSeconds() / 1e3,
                rep.traceBytes / 1e6);

    const std::string out = args.get("out");
    if (!out.empty()) {
        std::ofstream os(out);
        os << "cycle,power\n";
        for (size_t i = 0; i < rep.power.size(); ++i)
            os << i << "," << rep.power[i] << "\n";
        std::printf("wrote per-cycle power to %s\n", out.c_str());
    }
    return 0;
}

int
cmdDroopLab(const Args &args)
{
    std::ifstream is(args.get("model", "model.txt"));
    APOLLO_REQUIRE(is.is_open(), "cannot open model file");
    const ApolloModel model = ApolloModel::load(is);
    const Netlist netlist =
        DesignBuilder::build(designByName(args.get("design", "tiny")));

    control::DroopLabConfig cfg = control::defaultDroopLabConfig(
        static_cast<uint64_t>(args.getInt("cycles", 3000)));
    cfg.threads = static_cast<uint32_t>(args.getInt("threads", 0));
    const std::string pctl = args.get("percentile");
    if (!pctl.empty())
        cfg.triggerPercentile = std::stod(pctl);
    cfg.engageCycles =
        static_cast<uint32_t>(args.getInt("engage", cfg.engageCycles));
    cfg.triggerLatency = static_cast<uint32_t>(
        args.getInt("latency", cfg.triggerLatency));

    const StatusOr<control::DroopLabReport> report =
        runDroopLab(netlist, model, cfg);
    if (!report.ok())
        fatal(report.status().toString());

    std::printf("droop lab: %llu closed-loop cells, %zu scenario "
                "rows (* = Pareto front of avoided-vs-IPC-loss per "
                "workload x PDN)\n\n",
                static_cast<unsigned long long>(report->gridCells),
                report->rows.size());
    report->render(std::cout);
    std::printf("\nOPM-guided policy dominating no-mitigation at "
                "<10%% IPC loss: %s\n",
                report->hasDominatingPolicy() ? "yes" : "no");

    const std::string out = args.get("out");
    if (!out.empty()) {
        std::ofstream os(out);
        os << report->toJson();
        if (!os)
            fatal("cannot write droop-lab report to ", out);
        std::printf("wrote JSON report to %s\n", out.c_str());
    }
    return 0;
}

int
cmdServe(const Args &args)
{
    const std::string model_path = args.get("model");
    APOLLO_REQUIRE(!model_path.empty(), "serve needs --model FILE");
    std::ifstream is(model_path);
    APOLLO_REQUIRE(is.is_open(), "cannot open model file ", model_path);
    const ApolloModel model = ApolloModel::load(is);

    const std::string name = args.get("name", "default");
    const auto bits = static_cast<uint32_t>(args.getInt("bits", 0));
    const auto window =
        static_cast<uint32_t>(args.getInt("window", 32));

    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->addFloat(name, model).orFatal();
    if (bits > 0) {
        // A quantized OPM variant rides along under "<name>_q<bits>",
        // sharing the float entry's weights.
        registry->addQuantizedVariant(name + "_q" + std::to_string(bits),
                                      name, bits, window)
            .status()
            .orFatal();
    }

    serve::ServeLoopOptions options;
    options.config.threads =
        static_cast<size_t>(args.getInt("threads", 0));
    options.config.maxSessions =
        static_cast<size_t>(args.getInt("max-sessions", 64));
    options.config.maxQueuedChunks =
        static_cast<size_t>(args.getInt("max-queue", 4));
    options.recordDir = args.get("record");

    // --replay FILE is sugar for --in FILE: a record file IS a request
    // stream, so replaying is just serving it again.
    std::string in_path = args.get("replay");
    if (in_path.empty())
        in_path = args.get("in");
    const std::string out_path = args.get("out");

    std::ifstream fin;
    if (!in_path.empty()) {
        fin.open(in_path);
        APOLLO_REQUIRE(fin.is_open(), "cannot open request stream ",
                       in_path);
    }
    std::ofstream fout;
    if (!out_path.empty()) {
        fout.open(out_path);
        APOLLO_REQUIRE(fout.is_open(), "cannot open output file ",
                       out_path);
    }
    std::istream &in = in_path.empty() ? std::cin : fin;
    std::ostream &out = out_path.empty() ? std::cout : fout;

    StatusOr<serve::ServeLoopReport> report =
        serve::runServeLoop(registry, in, out, options);
    if (!report.ok())
        fatal(report.status().toString());
    std::fprintf(stderr,
                 "served %llu requests: %llu sessions, %llu chunks, "
                 "%llu errors, %llu auto-closed at EOF\n",
                 static_cast<unsigned long long>(report->requests),
                 static_cast<unsigned long long>(report->sessionsCreated),
                 static_cast<unsigned long long>(report->chunks),
                 static_cast<unsigned long long>(report->errors),
                 static_cast<unsigned long long>(report->autoClosed));
    return report->errors == 0 ? 0 : 1;
}

int
cmdServeGen(const Args &args)
{
    const std::string model_path = args.get("model");
    APOLLO_REQUIRE(!model_path.empty(), "serve-gen needs --model FILE");
    std::ifstream is(model_path);
    APOLLO_REQUIRE(is.is_open(), "cannot open model file ", model_path);
    const ApolloModel model = ApolloModel::load(is);
    const size_t q = model.proxyCount();

    const std::string name = args.get("name", "default");
    const auto sessions =
        static_cast<size_t>(args.getInt("sessions", 4));
    const auto chunks = static_cast<size_t>(args.getInt("chunks", 8));
    const auto rows =
        static_cast<size_t>(args.getInt("cycles-per-chunk", 4096));
    const auto window =
        static_cast<uint32_t>(args.getInt("window", 0));
    const auto seed = static_cast<uint64_t>(args.getInt("seed", 1));
    const std::string out_path = args.get("out", "serve_requests.ndjson");
    APOLLO_REQUIRE(sessions > 0 && chunks > 0 && rows > 0,
                   "sessions/chunks/cycles-per-chunk must be positive");

    std::ofstream os(out_path);
    APOLLO_REQUIRE(os.is_open(), "cannot open ", out_path);

    for (size_t s = 0; s < sessions; ++s) {
        serve::WireRequest req;
        req.op = serve::RequestOp::CreateSession;
        req.session = "s" + std::to_string(s);
        req.model = name;
        req.windowT = window;
        os << serve::encodeRequest(req);
    }
    // Interleave chunk submissions round-robin across the sessions so
    // the request stream itself exercises concurrent multiplexing.
    const uint64_t tail_mask =
        (rows % 64 == 0) ? ~uint64_t{0}
                         : ((uint64_t{1} << (rows % 64)) - 1);
    for (size_t c = 0; c < chunks; ++c) {
        for (size_t s = 0; s < sessions; ++s) {
            Xoshiro256StarStar rng(seed + 1000003 * s + c);
            serve::WireRequest req;
            req.op = serve::RequestOp::SubmitChunk;
            req.session = "s" + std::to_string(s);
            req.bits.reset(rows, q);
            for (size_t col = 0; col < q; ++col) {
                uint64_t *words = req.bits.colWordsMutable(col);
                const size_t wpc = req.bits.wordsPerCol();
                for (size_t w = 0; w < wpc; ++w)
                    words[w] = rng() & rng(); // ~25% toggle density
                words[wpc - 1] &= tail_mask;
            }
            os << serve::encodeRequest(req);
        }
    }
    for (size_t s = 0; s < sessions; ++s) {
        serve::WireRequest req;
        req.op = serve::RequestOp::CloseSession;
        req.session = "s" + std::to_string(s);
        os << serve::encodeRequest(req);
    }
    APOLLO_REQUIRE(static_cast<bool>(os), "write to ", out_path,
                   " failed");
    std::printf("wrote %zu sessions x %zu chunks x %zu cycles (Q=%zu) "
                "to %s\n",
                sessions, chunks, rows, q, out_path.c_str());
    return 0;
}

void
usage()
{
    std::printf(
        "apollo — APOLLO power-modeling framework CLI\n\n"
        "subcommands:\n"
        "  gen-data --design D --out F [--ga 1] [--benchmarks N]\n"
        "           [--cycles C] [--seed S]     generate training data\n"
        "  gen-test --design D --out F          designer test suite\n"
        "  train    --data F --q Q --out F      MCP select + relax\n"
        "           [--gamma G] [--lasso 1]\n"
        "  eval     --model F --data F          per-benchmark metrics\n"
        "  opm      --model F --design D        quantize + HW report\n"
        "           [--bits B] [--window T] [--emit F]\n"
        "  trace    --model F --design D        emulator-assisted flow\n"
        "           [--cycles N] [--out F]\n"
        "  droop-lab --model F --design D       closed-loop droop\n"
        "           [--cycles N] [--threads K]  mitigation sweep\n"
        "           [--percentile P] [--engage E] [--latency L]\n"
        "           [--out report.json]         (Pareto table)\n"
        "  serve    --model F [--name N]        serve the v1 wire API\n"
        "           [--bits B] [--window T]     (docs/SERVE_SCHEMA.md)\n"
        "           [--in F | --replay F] [--out F] [--record DIR]\n"
        "           [--threads K] [--max-sessions S] [--max-queue Q]\n"
        "  serve-gen --model F [--name N]       deterministic request\n"
        "           [--sessions S] [--chunks C] stream generator\n"
        "           [--cycles-per-chunk R] [--window T] [--seed X]\n"
        "           [--out F]\n"
        "designs: tiny | n1ish | a77ish\n\n"
        "global flags (any subcommand):\n"
        "  --metrics-json F   write a metrics-registry snapshot (JSON)\n"
        "                     after the subcommand finishes\n"
        "  --trace-out F      record trace spans and write Chrome\n"
        "                     trace_event JSON (chrome://tracing,\n"
        "                     Perfetto)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || std::strcmp(argv[1], "help") == 0 ||
        std::strcmp(argv[1], "--help") == 0) {
        usage();
        return argc < 2 ? 1 : 0;
    }
    const std::string cmd = argv[1];
    try {
        Args args(argc, argv, 2);

        // Global observability flags, honoured by every subcommand
        // (Args tolerates keys a subcommand does not consume).
        const std::string metrics_out = args.get("metrics-json");
        const std::string trace_out = args.get("trace-out");
        if (!trace_out.empty())
            obs::TraceCollector::instance().setEnabled(true);

        int rc = 1;
        if (cmd == "gen-data")
            rc = cmdGenData(args);
        else if (cmd == "gen-test")
            rc = cmdGenTest(args);
        else if (cmd == "train")
            rc = cmdTrain(args);
        else if (cmd == "eval")
            rc = cmdEval(args);
        else if (cmd == "opm")
            rc = cmdOpm(args);
        else if (cmd == "trace")
            rc = cmdTrace(args);
        else if (cmd == "droop-lab")
            rc = cmdDroopLab(args);
        else if (cmd == "serve")
            rc = cmdServe(args);
        else if (cmd == "serve-gen")
            rc = cmdServeGen(args);
        else {
            std::fprintf(stderr, "unknown subcommand '%s'\n",
                         cmd.c_str());
            usage();
            return 1;
        }

        if (!metrics_out.empty()) {
            std::ofstream os(metrics_out);
            os << obs::MetricRegistry::instance().snapshotJson()
               << '\n';
            if (!os)
                fatal("cannot write metrics snapshot to ", metrics_out);
            std::fprintf(stderr, "wrote metrics snapshot to %s\n",
                         metrics_out.c_str());
        }
        if (!trace_out.empty()) {
            obs::TraceCollector::instance()
                .writeJson(trace_out)
                .orFatal();
            std::fprintf(stderr, "wrote trace events to %s\n",
                         trace_out.c_str());
        }
        return rc;
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}
